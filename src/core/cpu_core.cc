#include "core/cpu_core.hh"

namespace ccsvm::core
{

CpuCore::CpuCore(sim::EventQueue &eq, sim::StatRegistry &stats,
                 const std::string &name, const CpuCoreConfig &cfg,
                 coherence::L1Controller &l1, vm::Walker &walker,
                 vm::Kernel &kernel, noc::Network &net,
                 noc::NodeId my_node)
    : eq_(&eq), cfg_(cfg), clock_(eq, cfg.clockPeriod), l1_(&l1),
      walker_(&walker), kernel_(&kernel),
      tlb_(stats, name + ".tlb", cfg.tlbEntries), net_(&net),
      node_(my_node),
      instructions_(stats.counter(name + ".instructions",
                                  "guest instructions retired")),
      memOps_(stats.counter(name + ".memOps",
                            "loads/stores/atomics issued")),
      syscalls_(stats.counter(name + ".syscalls",
                              "MIFD write syscalls")),
      faults_(stats.counter(name + ".pageFaults",
                            "page faults taken")),
      trc_(stats.tracer()), lane_(stats.tracer().lane(name))
{
    kernel.registerCpuTlb(&tlb_, &eq);
}

void
CpuCore::runThread(ThreadContext &tc, sim::GuestTask task,
                   std::function<void()> on_done)
{
    ccsvm_assert(!running_, "CPU core already running a thread");
    running_ = true;
    onDone_ = std::move(on_done);
    tc.bind(tc.tid(), tc.process(), this);
    tc.start(std::move(task));
    // First resume from a fresh event at the next clock edge.
    eq_->schedule(clock_.clockEdge(1), [&tc] { tc.resumeFromEvent(); },
                  sim::prioCpu);
}

void
CpuCore::onThreadDone(ThreadContext &)
{
    running_ = false;
    if (onDone_) {
        auto cb = std::move(onDone_);
        onDone_ = {};
        cb();
    }
}

void
CpuCore::onOpDeclared(ThreadContext &tc)
{
    // Consume an issue slot: at most one instruction per issuePeriod.
    const Tick slot = std::max(clock_.clockEdge(), nextIssue_);
    nextIssue_ = slot + cfg_.issuePeriod;
    eq_->schedule(slot, [this, &tc] { issue(tc); }, sim::prioCpu);
}

void
CpuCore::issue(ThreadContext &tc)
{
    GuestOp &op = tc.pendingOp();
    // issue() runs exactly once per declared op (fault retries
    // re-enter translateAndAccess, not issue), so this is the one
    // capture point for the CPU-side guest op stream.
    if (OpSink *sink = tc.sink())
        sink->record(op, eq_->now());
    switch (op.kind) {
      case OpKind::Compute: {
        const std::uint64_t n = std::max<std::uint64_t>(
            op.computeCount, 1);
        instructions_ += n;
        const Tick done = eq_->now() + n * cfg_.issuePeriod;
        nextIssue_ = done;
        eq_->schedule(done, [&tc] { tc.completeOp(0); },
                      sim::prioCpu);
        return;
      }
      case OpKind::Load:
      case OpKind::Store:
      case OpKind::Amo:
        ++instructions_;
        ++memOps_;
        translateAndAccess(tc);
        return;
      case OpKind::MifdWrite:
        ++instructions_;
        ++syscalls_;
        doSyscall(tc);
        return;
      case OpKind::Stall: {
        const Tick done = eq_->now() + op.stallTicks;
        nextIssue_ = done;
        eq_->schedule(done, [&tc] { tc.completeOp(0); },
                      sim::prioCpu);
        return;
      }
      case OpKind::HostWait:
        pollHostWait(tc);
        return;
    }
    ccsvm_panic("unknown op kind");
}

void
CpuCore::pollHostWait(ThreadContext &tc)
{
    GuestOp &op = tc.pendingOp();
    if (op.hostPred()) {
        eq_->schedule(clock_.clockEdge(1), [&tc] { tc.completeOp(0); },
                      sim::prioCpu);
        return;
    }
    eq_->scheduleIn(cfg_.hostWaitPollPeriod,
                    [this, &tc] { pollHostWait(tc); }, sim::prioCpu);
}

void
CpuCore::translateAndAccess(ThreadContext &tc)
{
    GuestOp &op = tc.pendingOp();
    vm::TlbEntry te;
    if (tlb_.lookup(op.va, te)) {
        accessMemory(tc, te.frame | (op.va & mem::pageOffsetMask), te);
        return;
    }
    // Hardware page walk; on a true fault, trap to the kernel and
    // retry the translation afterwards.
    runtime::Process &proc = *tc.process();
    walker_->walk(proc.addressSpace().pageTable(), op.va,
                  [this, &tc, &proc](vm::WalkResult r) {
                      GuestOp &o = tc.pendingOp();
                      if (r.present) {
                          vm::TlbEntry te{r.frame, r.writable};
                          if (const vm::MemRegion *mr =
                                  proc.addressSpace().regionFor(o.va)) {
                              te.attr = mr->attr;
                              te.prot = mr->protocol;
                          }
                          tlb_.insert(o.va, te.frame, te.writable,
                                      te.attr, te.prot);
                          accessMemory(
                              tc,
                              te.frame | (o.va & mem::pageOffsetMask),
                              te);
                          return;
                      }
                      ++faults_;
                      kernel_->handlePageFault(
                          proc.addressSpace(), o.va,
                          [this, &tc] { translateAndAccess(tc); });
                  });
}

void
CpuCore::accessUncached(ThreadContext &tc, Addr paddr)
{
    // Pinned zero-copy region: bypass the cache hierarchy entirely.
    // Writes are posted through a one-block write-combining buffer;
    // reads buffer one block. Every block transition is an off-chip
    // transaction — this is the APU's CPU<->GPU communication path.
    GuestOp &op = tc.pendingOp();
    const Addr block = mem::blockAlign(paddr);
    const unsigned off =
        static_cast<unsigned>(paddr & mem::blockOffsetMask);

    if (op.kind == OpKind::Store) {
        uncached_.phys->writeScalar(paddr, op.wdata, op.size);
        if (block != wcBlock_) {
            wcBlock_ = block;
            uncached_.dram->access(true, mem::blockBytes, [] {});
        }
        eq_->scheduleIn(uncached_.writePostLatency,
                        [&tc] { tc.completeOp(0); }, sim::prioCpu);
        return;
    }
    if (op.kind == OpKind::Load) {
        const Tick lat = (block == rdBlock_)
                             ? uncached_.readHitLatency
                             : Tick(0);
        if (block != rdBlock_) {
            rdBlock_ = block;
            const Addr pa = paddr;
            const unsigned size = op.size;
            uncached_.dram->access(
                false, mem::blockBytes, [this, &tc, pa, size] {
                    tc.completeOp(
                        uncached_.phys->readScalar(pa, size));
                });
            return;
        }
        eq_->scheduleIn(lat, [this, &tc, paddr, off] {
            (void)off;
            GuestOp &o = tc.pendingOp();
            tc.completeOp(uncached_.phys->readScalar(paddr, o.size));
        }, sim::prioCpu);
        return;
    }
    // Atomics to uncached space: read-modify-write at memory.
    const Addr pa = paddr;
    uncached_.dram->access(false, mem::blockBytes, [this, &tc, pa] {
        GuestOp &o = tc.pendingOp();
        const std::uint64_t old_val =
            uncached_.phys->readScalar(pa, o.size);
        const std::uint64_t new_val = coherence::amoApply(
            o.amoOp, old_val, o.operand, o.operand2);
        uncached_.phys->writeScalar(pa, new_val, o.size);
        uncached_.dram->access(true, mem::blockBytes,
                               [&tc, old_val] {
                                   tc.completeOp(old_val);
                               });
    });
}

void
CpuCore::accessMemory(ThreadContext &tc, Addr paddr,
                      const vm::TlbEntry &te)
{
    if (uncached_.contains(paddr)) {
        accessUncached(tc, paddr);
        return;
    }
    GuestOp &op = tc.pendingOp();
    auto req = std::make_unique<coherence::MemRequest>();
    req->paddr = paddr;
    req->size = op.size;
    req->region = te.attr;
    req->regionProt = te.prot;
    switch (op.kind) {
      case OpKind::Load:
        req->kind = coherence::MemRequest::Kind::Read;
        break;
      case OpKind::Store:
        req->kind = coherence::MemRequest::Kind::Write;
        req->wdata = op.wdata;
        break;
      case OpKind::Amo:
        req->kind = coherence::MemRequest::Kind::Amo;
        req->amoOp = op.amoOp;
        req->operand = op.operand;
        req->operand2 = op.operand2;
        break;
      default:
        ccsvm_panic("non-memory op in accessMemory");
    }
    req->onDone = [&tc](std::uint64_t v) { tc.completeOp(v); };
    l1_->access(std::move(req));
}

void
CpuCore::doSyscall(ThreadContext &tc)
{
    GuestOp &op = tc.pendingOp();
    ccsvm_assert(mifd_.dev, "MIFD write syscall without a MIFD");
    auto task = op.task;
    if (trc_.enabled(sim::traceKernel))
        trc_.instant(sim::traceKernel, lane_, "launch", eq_->now(),
                     task ? task->numThreads() : 0);

    // After the kernel syscall path, the driver's descriptor write
    // travels to the MIFD over the interconnect.
    eq_->scheduleIn(cfg_.syscallLatency, [this, task, &tc] {
        MifdIface *dev = mifd_.dev;
        net_->send(node_, mifd_.node, noc::VNet::Request, 64,
                   [dev, task] { dev->submitTask(*task); });
        // The syscall returns to the guest once the write is posted.
        tc.completeOp(0);
    });
    nextIssue_ = eq_->now() + cfg_.syscallLatency;
}

} // namespace ccsvm::core

/**
 * @file
 * MTTOP (massively-threaded throughput-oriented) core model.
 *
 * Table 2: "10 MTTOP cores with Alpha-like ISA, 600 MHz. Each MTTOP
 * core supports 128 threads and can simultaneously execute 8 threads"
 * for a combined max of 80 operations per cycle. The model is SIMT at
 * the throughput level: up to issueWidth ready threads advance one
 * operation per core cycle; a compute batch occupies its thread for
 * its instruction count in cycles. Atomics go through the core's L1
 * after acquiring exclusive coherence permission (Sec. 3.2.4). The
 * TLB is per-core; a page fault interrupts a CPU core through the
 * MIFD (Sec. 3.2.1). A CR3 switch (task from a different process)
 * flushes the TLB.
 */

#ifndef CCSVM_CORE_MTTOP_CORE_HH
#define CCSVM_CORE_MTTOP_CORE_HH

#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "base/types.hh"
#include "coherence/l1_cache.hh"
#include "core/thread_context.hh"
#include "runtime/process.hh"
#include "sim/clock.hh"
#include "sim/stats.hh"
#include "vm/tlb.hh"
#include "vm/walker.hh"

namespace ccsvm::core
{

/** MTTOP core timing parameters. */
struct MttopCoreConfig
{
    Tick clockPeriod = 1667;   ///< 600 MHz
    unsigned issueWidth = 8;   ///< thread-ops per cycle
    unsigned numContexts = 128;
    unsigned tlbEntries = 64;
};

/** One MTTOP core. */
class MttopCore : public CoreModel
{
  public:
    MttopCore(sim::EventQueue &eq, sim::StatRegistry &stats,
              const std::string &name, const MttopCoreConfig &cfg,
              coherence::L1Controller &l1, vm::Walker &walker,
              vm::Kernel &kernel);

    /** Wire up the MIFD for fault relay and context accounting;
     * @p port is this core's index at the device. */
    void
    connectMifd(MifdIface *mifd, unsigned port = 0)
    {
        mifd_ = mifd;
        mifdPort_ = port;
    }

    /**
     * Queue whose partition owns task-completion callbacks
     * (TaskState::onComplete). Launch-side bookkeeping lives with the
     * launching CPU cores, so under a PartEngine completions are
     * relayed there instead of running in the MTTOP partition. Null
     * (the default) runs them inline.
     */
    void setCompletionQueue(sim::EventQueue *q) { doneq_ = q; }

    unsigned freeContexts() const { return freeSlots_; }
    unsigned totalContexts() const { return cfg_.numContexts; }

    /**
     * Trace-capture hook: resolves the op sink for a freshly assigned
     * thread (keyed by its task's captureId and tid). While set, every
     * assignChunk consults it; a null hook (or a null result) leaves
     * the context sink-free. Runs in this core's partition.
     */
    using CaptureHook =
        std::function<OpSink *(const TaskDescriptor &, ThreadId)>;
    void setCaptureHook(CaptureHook hook)
    {
        captureHook_ = std::move(hook);
    }

    /**
     * Accept a SIMD-width chunk of threads [first, first+count) of a
     * task; called by the MIFD after dispatch.
     */
    void assignChunk(std::shared_ptr<TaskDescriptor> desc,
                     ThreadId first, unsigned count,
                     std::shared_ptr<TaskState> state);

    // CoreModel interface.
    void onOpDeclared(ThreadContext &tc) override;
    void onThreadDone(ThreadContext &tc) override;

  private:
    struct Slot
    {
        ThreadContext tc;
        bool inUse = false;
        std::shared_ptr<TaskDescriptor> desc;
        std::shared_ptr<TaskState> state;
    };

    void scheduleCycle();
    void cycle();
    void processOp(ThreadContext &tc);
    void translateAndAccess(ThreadContext &tc);
    void accessMemory(ThreadContext &tc, Addr paddr,
                      const vm::TlbEntry &te);

    sim::EventQueue *eq_;
    MttopCoreConfig cfg_;
    sim::ClockDomain clock_;
    coherence::L1Controller *l1_;
    vm::Walker *walker_;
    vm::Tlb tlb_;
    MifdIface *mifd_ = nullptr;
    unsigned mifdPort_ = 0;
    sim::EventQueue *doneq_ = nullptr;
    CaptureHook captureHook_;

    std::vector<std::unique_ptr<Slot>> slots_;
    unsigned freeSlots_;
    std::deque<ThreadContext *> ready_;
    bool cycleScheduled_ = false;
    runtime::Process *currentProcess_ = nullptr;

    sim::Counter &instructions_;
    sim::Counter &memOps_;
    sim::Counter &threadsRun_;
    sim::Counter &faults_;
    sim::Counter &cr3Switches_;
};

} // namespace ccsvm::core

#endif // CCSVM_CORE_MTTOP_CORE_HH

#include "dev/mifd.hh"

namespace ccsvm::dev
{

Mifd::Mifd(sim::EventQueue &eq, sim::StatRegistry &stats,
           const MifdConfig &cfg, vm::Kernel &kernel,
           noc::Network &net, noc::NodeId my_node)
    : eq_(&eq), cfg_(cfg), kernel_(&kernel), net_(&net),
      node_(my_node),
      tasks_(stats.counter("mifd.tasks", "tasks accepted")),
      chunks_(stats.counter("mifd.chunks",
                            "SIMD-width chunks dispatched")),
      faultRelays_(stats.counter("mifd.faultRelays",
                                 "MTTOP page faults relayed to CPU")),
      errors_(stats.counter("mifd.errors",
                            "error-register writes")),
      trc_(stats.tracer()), lane_(stats.tracer().lane("mifd"))
{}

void
Mifd::connectMttops(std::vector<MttopPort> cores)
{
    mttops_ = std::move(cores);
    ccsvm_assert(!mttops_.empty(), "MIFD needs MTTOP cores");
    ctxFree_.reserve(mttops_.size());
    ctxFree_.clear();
    for (std::size_t i = 0; i < mttops_.size(); ++i) {
        ctxFree_.push_back(mttops_[i].core->freeContexts());
        mttops_[i].core->connectMifd(this,
                                     static_cast<unsigned>(i));
    }
}

unsigned
Mifd::totalFreeContexts() const
{
    unsigned total = 0;
    for (unsigned free : ctxFree_)
        total += free;
    return total;
}

void
Mifd::submitTask(core::TaskDescriptor desc)
{
    if (sim::crossPartition(*eq_)) {
        sim::postToPartition(*eq_,
                             [this, desc = std::move(desc)]() mutable {
                                 submitTask(std::move(desc));
                             });
        return;
    }
    // The device itself serializes descriptor handling.
    const Tick start = std::max(eq_->now(), deviceFree_);
    deviceFree_ = start + cfg_.taskAcceptLatency;
    eq_->schedule(deviceFree_, [this, desc = std::move(desc)]() mutable {
        acceptTask(std::move(desc));
    });
}

void
Mifd::acceptTask(core::TaskDescriptor desc)
{
    ++tasks_;
    const unsigned threads = desc.numThreads();
    if (trc_.enabled(sim::traceKernel))
        trc_.instant(sim::traceKernel, lane_, "task", eq_->now(),
                     threads);

    if (desc.requireAll && threads > totalFreeContexts()) {
        // The paper's semantics: the MIFD does not guarantee that a
        // task requiring global synchronization is entirely
        // scheduled; it flags the shortfall in an error register.
        ++errors_;
        errorReg_ = 1;
    }

    auto shared_desc =
        std::make_shared<core::TaskDescriptor>(std::move(desc));
    auto state = std::make_shared<core::TaskState>();
    state->remaining = static_cast<int>(threads);
    state->onComplete = shared_desc->onComplete;

    for (ThreadId first = shared_desc->firstTid;
         first <= shared_desc->lastTid;
         first += cfg_.simdWidth) {
        Chunk c;
        c.desc = shared_desc;
        c.state = state;
        c.first = first;
        c.count = std::min<unsigned>(
            cfg_.simdWidth, shared_desc->lastTid - first + 1);
        pending_.push_back(std::move(c));
    }
    dispatch();
}

void
Mifd::dispatch()
{
    while (!pending_.empty()) {
        Chunk &c = pending_.front();

        // Round-robin over cores until the device's mirror shows one
        // with room for the chunk. The mirror is decremented here (at
        // the dispatch decision) and refilled by notifyContextsFreed,
        // so dispatched-but-unassigned chunks are never double-counted.
        std::size_t tried = 0;
        std::size_t chosen = mttops_.size();
        while (tried < mttops_.size()) {
            const std::size_t idx =
                (rrNext_ + tried) % mttops_.size();
            if (ctxFree_[idx] >= c.count) {
                chosen = idx;
                break;
            }
            ++tried;
        }
        if (chosen == mttops_.size())
            return; // no contexts free; retried on notifyContextsFreed
        rrNext_ = (chosen + 1) % mttops_.size();

        Chunk chunk = std::move(pending_.front());
        pending_.pop_front();
        ++chunks_;
        ctxFree_[chosen] -= chunk.count;

        // Device occupancy per dispatch, then the descriptor write
        // travels to the MTTOP core over the interconnect. The
        // delivery closure runs in the MTTOP core's partition and
        // touches only the core, never the device.
        const Tick start = std::max(eq_->now(), deviceFree_);
        deviceFree_ = start + cfg_.chunkDispatchLatency;
        if (trc_.enabled(sim::traceKernel))
            trc_.complete(sim::traceKernel, lane_, "chunk", start,
                          deviceFree_, chunk.first);
        core::MttopCore *core = mttops_[chosen].core;
        const noc::NodeId dst = mttops_[chosen].node;
        eq_->schedule(
            deviceFree_,
            [this, core, dst, chunk = std::move(chunk)]() mutable {
                net_->send(node_, dst, noc::VNet::Request, 32,
                           [core, chunk = std::move(chunk)]() mutable {
                               core->assignChunk(chunk.desc,
                                                 chunk.first,
                                                 chunk.count,
                                                 chunk.state);
                           });
            });
    }
}

void
Mifd::notifyContextsFreed(unsigned port)
{
    if (sim::crossPartition(*eq_)) {
        sim::postToPartition(*eq_,
                             [this, port] { freedLocal(port); });
        return;
    }
    freedLocal(port);
}

void
Mifd::freedLocal(unsigned port)
{
    ccsvm_assert(port < ctxFree_.size(), "freed on unknown port %u",
                 port);
    ++ctxFree_[port];
    ccsvm_assert(ctxFree_[port] <= mttops_[port].core->totalContexts(),
                 "context mirror overflowed on port %u", port);
    if (pending_.empty() || dispatchScheduled_)
        return;
    // Batch re-dispatch onto a fresh event (contexts free during
    // other processing).
    dispatchScheduled_ = true;
    eq_->scheduleIn(cfg_.chunkDispatchLatency, [this] {
        dispatchScheduled_ = false;
        dispatch();
    });
}

void
Mifd::relayPageFault(runtime::Process &proc, vm::VAddr va,
                     std::function<void()> retry)
{
    if (sim::crossPartition(*eq_)) {
        // Hop to the device's partition; the faulting core retries in
        // its own partition once the kernel has serviced the fault.
        sim::EventQueue *src = sim::activeQueue();
        sim::postToPartition(
            *eq_, [this, &proc, va, src,
                   cb = std::move(retry)]() mutable {
                relayPageFault(proc, va,
                               [src, cb = std::move(cb)]() mutable {
                                   sim::postToPartition(
                                       *src, std::move(cb));
                               });
            });
        return;
    }
    ++faultRelays_;
    if (trc_.enabled(sim::traceVm))
        trc_.complete(sim::traceVm, lane_, "faultRelay", eq_->now(),
                      eq_->now() + cfg_.faultRelayLatency, va);
    // Interrupt a CPU core with {cause=page fault, CR3}; the CPU-side
    // handler cost is the kernel model's fault latency.
    eq_->scheduleIn(cfg_.faultRelayLatency,
                    [this, &proc, va, retry = std::move(retry)] {
                        kernel_->handlePageFault(proc.addressSpace(),
                                                 va, std::move(retry));
                    });
}

} // namespace ccsvm::dev

/**
 * @file
 * MTTOP InterFace Device (MIFD).
 *
 * "The MIFD's purpose is to abstract away the details of the MTTOP
 * (including how many MTTOP cores are on the chip)... When a CPU core
 * launches a task on the MTTOP, it communicates this task to the MIFD
 * via a write syscall, and the MIFD finds a set of available MTTOP
 * thread contexts that can run the assigned task. Task assignment is
 * done in a simple round-robin manner until there are no MTTOP thread
 * contexts remaining... it will write an error register if there are
 * not enough MTTOP thread contexts available" (Sec. 3.1). The MIFD
 * also relays MTTOP page faults to a CPU core as an interrupt
 * carrying the fault cause and CR3 (Sec. 3.2.1).
 */

#ifndef CCSVM_DEV_MIFD_HH
#define CCSVM_DEV_MIFD_HH

#include <deque>
#include <memory>
#include <vector>

#include "base/types.hh"
#include "core/mttop_core.hh"
#include "noc/network.hh"
#include "sim/eventq.hh"
#include "sim/parteventq.hh"
#include "sim/stats.hh"
#include "vm/kernel.hh"

namespace ccsvm::dev
{

/** MIFD timing parameters. */
struct MifdConfig
{
    /** Device-side handling of an incoming task descriptor. */
    Tick taskAcceptLatency = 120 * tickNs;
    /** Per-chunk scheduling decision + descriptor write. */
    Tick chunkDispatchLatency = 40 * tickNs;
    /** Interrupt delivery for an MTTOP page fault to a CPU core. */
    Tick faultRelayLatency = 600 * tickNs;
    /** Threads per dispatch chunk: the SIMD width (warp/wavefront). */
    unsigned simdWidth = 8;
};

/** Wiring record for one MTTOP core. */
struct MttopPort
{
    core::MttopCore *core = nullptr;
    noc::NodeId node = -1;
};

/** The MTTOP interface device. */
class Mifd : public core::MifdIface
{
  public:
    Mifd(sim::EventQueue &eq, sim::StatRegistry &stats,
         const MifdConfig &cfg, vm::Kernel &kernel, noc::Network &net,
         noc::NodeId my_node);

    /** Wire up the MTTOP cores (dispatch targets). */
    void connectMttops(std::vector<MttopPort> cores);

    /** Error register: set when a requireAll task could not have all
     * of its threads resident simultaneously. */
    std::uint64_t errorRegister() const { return errorReg_; }
    void clearErrorRegister() { errorReg_ = 0; }

    // MifdIface. All three entry points may be called from another
    // partition (CPU syscall, MTTOP fault/completion); each routes
    // itself onto the device's own queue so the pending queue, the
    // context mirror, and deviceFree_ are touched only there.
    void submitTask(core::TaskDescriptor desc) override;
    void relayPageFault(runtime::Process &proc, vm::VAddr va,
                        std::function<void()> retry) override;
    void notifyContextsFreed(unsigned port) override;

  private:
    struct Chunk
    {
        std::shared_ptr<core::TaskDescriptor> desc;
        std::shared_ptr<core::TaskState> state;
        ThreadId first = 0;
        unsigned count = 0;
    };

    void acceptTask(core::TaskDescriptor desc);
    void dispatch();
    void freedLocal(unsigned port);
    unsigned totalFreeContexts() const;

    sim::EventQueue *eq_;
    MifdConfig cfg_;
    vm::Kernel *kernel_;
    noc::Network *net_;
    noc::NodeId node_;
    std::vector<MttopPort> mttops_;

    std::deque<Chunk> pending_;
    /** Device-side mirror of free contexts per core: decremented when
     * a chunk is dispatched, incremented when a core reports a freed
     * context. Replaces live freeContexts() polls (which would race
     * across partitions) and subsumes the old in-flight reservation:
     * the mirror already discounts dispatched-but-unassigned chunks. */
    std::vector<unsigned> ctxFree_;
    std::size_t rrNext_ = 0;
    Tick deviceFree_ = 0;
    std::uint64_t errorReg_ = 0;
    bool dispatchScheduled_ = false;

    sim::Counter &tasks_;
    sim::Counter &chunks_;
    sim::Counter &faultRelays_;
    sim::Counter &errors_;

    sim::Tracer &trc_;
    int lane_;
};

} // namespace ccsvm::dev

#endif // CCSVM_DEV_MIFD_HH

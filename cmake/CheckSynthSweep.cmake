# Test script: drive the synthetic coherence patterns through the
# ccsvm driver and assert the discrimination they exist to provide:
#
#   - every synth:<pattern> validates against its golden model under
#     every protocol (exit code 0)
#   - migratory dirty writebacks (dirN.writebacks + dirN.sharingWb):
#     msi strictly greater than moesi
#   - false-sharing L1 invalidations at least 10x the padded baseline
#
# Usage: cmake -DCCSVM_DRIVER=<path> -DCCSVM_OUT_DIR=<dir>
#              -P CheckSynthSweep.cmake

if(NOT CCSVM_DRIVER OR NOT CCSVM_OUT_DIR)
  message(FATAL_ERROR "CCSVM_DRIVER and CCSVM_OUT_DIR are required")
endif()

file(MAKE_DIRECTORY ${CCSVM_OUT_DIR})

# Aggregate dir writebacks+sharingWb and L1 invs from a driver JSON.
function(synth_metrics json wb_out invs_out)
  file(READ ${json} doc)
  string(JSON banks GET "${doc}" machine l2_banks)
  string(JSON cpus GET "${doc}" machine cpu_cores)
  string(JSON mttops GET "${doc}" machine mttop_cores)

  set(wb 0)
  math(EXPR last_bank "${banks} - 1")
  foreach(b RANGE ${last_bank})
    string(JSON v GET "${doc}" stats counters dir${b}.writebacks)
    math(EXPR wb "${wb} + ${v}")
    string(JSON v GET "${doc}" stats counters dir${b}.sharingWb)
    math(EXPR wb "${wb} + ${v}")
  endforeach()

  set(invs 0)
  math(EXPR last_cpu "${cpus} - 1")
  foreach(c RANGE ${last_cpu})
    string(JSON v GET "${doc}" stats counters cpu${c}.l1.invs)
    math(EXPR invs "${invs} + ${v}")
  endforeach()
  math(EXPR last_mttop "${mttops} - 1")
  foreach(mt RANGE ${last_mttop})
    string(JSON v GET "${doc}" stats counters mttop${mt}.l1.invs)
    math(EXPR invs "${invs} + ${v}")
  endforeach()

  set(${wb_out} ${wb} PARENT_SCOPE)
  set(${invs_out} ${invs} PARENT_SCOPE)
endfunction()

# One validated run per (pattern, protocol); iterations kept small —
# the assertions below only need the traffic shape, not its scale.
foreach(pattern IN ITEMS padded false hot migratory prodcons stream
                         ptrchase readmostly)
  foreach(proto IN ITEMS msi mesi moesi)
    set(json ${CCSVM_OUT_DIR}/synth_${pattern}_${proto}.json)
    execute_process(
      COMMAND ${CCSVM_DRIVER} --workload synth:${pattern}
              --iters 48 --protocol ${proto} --json ${json}
      RESULT_VARIABLE rc
      OUTPUT_VARIABLE out
      ERROR_VARIABLE err)
    if(NOT rc EQUAL 0)
      message(FATAL_ERROR "synth:${pattern} --protocol ${proto} "
                          "exited ${rc}\nstdout: ${out}\n"
                          "stderr: ${err}")
    endif()
  endforeach()
endforeach()

synth_metrics(${CCSVM_OUT_DIR}/synth_migratory_msi.json
              wb_mig_msi invs_mig_msi)
synth_metrics(${CCSVM_OUT_DIR}/synth_migratory_mesi.json
              wb_mig_mesi invs_mig_mesi)
synth_metrics(${CCSVM_OUT_DIR}/synth_migratory_moesi.json
              wb_mig_moesi invs_mig_moesi)
if(NOT wb_mig_msi GREATER wb_mig_moesi)
  message(FATAL_ERROR "migratory writebacks: msi (${wb_mig_msi}) "
                      "not strictly greater than moesi "
                      "(${wb_mig_moesi})")
endif()
if(wb_mig_mesi LESS wb_mig_moesi)
  message(FATAL_ERROR "migratory writebacks: mesi (${wb_mig_mesi}) "
                      "fewer than moesi (${wb_mig_moesi})")
endif()

synth_metrics(${CCSVM_OUT_DIR}/synth_false_moesi.json
              wb_false invs_false)
synth_metrics(${CCSVM_OUT_DIR}/synth_padded_moesi.json
              wb_padded invs_padded)
math(EXPR invs_padded_x10 "${invs_padded} * 10")
if(invs_false LESS invs_padded_x10)
  message(FATAL_ERROR "false-sharing invalidations (${invs_false}) "
                      "not >= 10x padded (${invs_padded})")
endif()

message(STATUS "synth sweep ok: migratory wb msi=${wb_mig_msi} "
               "mesi=${wb_mig_mesi} moesi=${wb_mig_moesi}; invs "
               "false=${invs_false} padded=${invs_padded}")

# Test script: the observability layer's contract at the CLI boundary.
#
#   - A traced run exports Chrome trace-event JSON that is
#     byte-identical at --sim-threads 1 and --sim-threads 4 (the
#     per-partition rings merge in (when, priority, srcPart, srcSeq)
#     order at window barriers, so host interleaving must not leak
#     into the document).
#   - The trace parses: cmake's string(JSON) always, python3's
#     json.load when an interpreter is on PATH (closer to what
#     Perfetto's importer accepts).
#   - Tracing is observationally free: the stats JSON of a traced run
#     is byte-identical to the same run without --trace-out.
#   - --sample-interval populates a "series" section whose samples
#     are identical at any thread count.
#   - The per-class latency histograms (latency.{cpu,mttop}.mem with
#     p50/p90/p99) are present for matmul and two synthetic patterns.
#
# Usage: cmake -DCCSVM_DRIVER=<path> -DCCSVM_OUT_DIR=<dir>
#              -P CheckTrace.cmake

if(NOT CCSVM_DRIVER OR NOT CCSVM_OUT_DIR)
  message(FATAL_ERROR "CCSVM_DRIVER and CCSVM_OUT_DIR are required")
endif()

file(MAKE_DIRECTORY ${CCSVM_OUT_DIR})

function(run_traced trace json threads)
  execute_process(
    COMMAND ${CCSVM_DRIVER} --workload matmul --n 8
            --sim-threads ${threads} --sample-interval 500000
            --trace-out ${trace} --json ${json}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "traced run (--sim-threads ${threads}) "
            "exited ${rc}\nstdout: ${out}\nstderr: ${err}")
  endif()
endfunction()

set(tr1 ${CCSVM_OUT_DIR}/trace_t1.json)
set(tr4 ${CCSVM_OUT_DIR}/trace_t4.json)
set(j1 ${CCSVM_OUT_DIR}/trace_stats_t1.json)
set(j4 ${CCSVM_OUT_DIR}/trace_stats_t4.json)
run_traced(${tr1} ${j1} 1)
run_traced(${tr4} ${j4} 4)

# --- trace byte-identity at any thread count ------------------------
file(READ ${tr1} trace1)
file(READ ${tr4} trace4)
if(NOT trace1 STREQUAL trace4)
  message(FATAL_ERROR "trace JSON differs between --sim-threads 1 "
          "and --sim-threads 4")
endif()

# --- the trace parses and is non-trivial ----------------------------
string(JSON n_events LENGTH "${trace1}" traceEvents)
if(n_events LESS_EQUAL 1)
  message(FATAL_ERROR "trace has no events: ${n_events}")
endif()
string(JSON recorded GET "${trace1}" otherData recorded)
if(recorded LESS_EQUAL 0)
  message(FATAL_ERROR "trace records no events: ${recorded}")
endif()

find_program(CCSVM_PYTHON3 python3)
if(CCSVM_PYTHON3)
  execute_process(
    COMMAND ${CCSVM_PYTHON3} -c
            "import json,sys; d=json.load(open(sys.argv[1])); \
assert d['traceEvents'], 'empty traceEvents'"
            ${tr1}
    RESULT_VARIABLE rc
    ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "python3 json.load rejected the trace: "
            "${err}")
  endif()
else()
  message(STATUS "python3 not found; cmake-only trace parse")
endif()

# --- stats unperturbed by tracing -----------------------------------
# Same point, same thread count, no --trace-out (sampling stays on so
# the documents are comparable): every byte must match.
set(joff ${CCSVM_OUT_DIR}/trace_stats_off.json)
execute_process(
  COMMAND ${CCSVM_DRIVER} --workload matmul --n 8 --sim-threads 1
          --sample-interval 500000 --json ${joff}
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "untraced run exited ${rc}\nstderr: ${err}")
endif()
file(READ ${j1} traced_doc)
file(READ ${joff} untraced_doc)
if(NOT traced_doc STREQUAL untraced_doc)
  message(FATAL_ERROR "stats JSON changes when tracing is on:\n"
          "--- traced:\n${traced_doc}\n"
          "--- untraced:\n${untraced_doc}")
endif()

# --- the time series ------------------------------------------------
string(JSON interval GET "${traced_doc}" series interval)
if(NOT interval EQUAL 500000)
  message(FATAL_ERROR "series.interval not echoed: ${interval}")
endif()
string(JSON n_samples LENGTH "${traced_doc}" series samples)
if(n_samples LESS_EQUAL 0)
  message(FATAL_ERROR "series has no samples")
endif()
string(JSON s0_t GET "${traced_doc}" series samples 0 t)
string(JSON s0_dram GET "${traced_doc}" series samples 0 dram)
if(s0_t LESS_EQUAL 0)
  message(FATAL_ERROR "first sample has no timestamp: ${s0_t}")
endif()
# Identical at 4 threads (already implied by the byte compare of j1
# vs j4 modulo the echoed sim_threads field).
file(READ ${j4} doc4)
string(REGEX REPLACE "\"sim_threads\": [0-9]+" "\"sim_threads\": 0"
       doc4 "${doc4}")
string(REGEX REPLACE "\"sim_threads\": [0-9]+" "\"sim_threads\": 0"
       doc1 "${traced_doc}")
if(NOT doc1 STREQUAL doc4)
  message(FATAL_ERROR "stats/series JSON differs between "
          "--sim-threads 1 and 4")
endif()

# --- latency histograms across workload classes ---------------------
foreach(wl matmul synth:false synth:stream)
  string(REPLACE ":" "_" tag "${wl}")
  set(json ${CCSVM_OUT_DIR}/trace_histo_${tag}.json)
  execute_process(
    COMMAND ${CCSVM_DRIVER} --workload ${wl} --n 8 --iters 16
            --json ${json}
    RESULT_VARIABLE rc
    ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "${wl} exited ${rc}\nstderr: ${err}")
  endif()
  file(READ ${json} doc)
  foreach(cls cpu mttop)
    string(JSON cnt GET "${doc}" stats histograms
           latency.${cls}.mem count)
    string(JSON p50 GET "${doc}" stats histograms
           latency.${cls}.mem p50)
    string(JSON p90 GET "${doc}" stats histograms
           latency.${cls}.mem p90)
    string(JSON p99 GET "${doc}" stats histograms
           latency.${cls}.mem p99)
  endforeach()
  # Every workload in this list drives at least one of the two core
  # classes through its L1s.
  string(JSON cpu_cnt GET "${doc}" stats histograms
         latency.cpu.mem count)
  string(JSON mttop_cnt GET "${doc}" stats histograms
         latency.mttop.mem count)
  if(cpu_cnt EQUAL 0 AND mttop_cnt EQUAL 0)
    message(FATAL_ERROR "${wl}: no memory latency recorded")
  endif()
endforeach()

message(STATUS "observability ok: trace byte-identical at "
               "--sim-threads 1 vs 4 (${n_events} rows, "
               "${recorded} recorded), stats unperturbed, "
               "${n_samples} series samples, histograms present")

# Test script: README's driver-flag table and `ccsvm --help` must
# agree. The table lives between the markers
#
#   <!-- driver-flags:begin --> ... <!-- driver-flags:end -->
#
# Every flag --help prints must appear (backticked) inside the marked
# section, and every backticked --flag in the section must exist in
# --help — so neither side can drift without failing CI.
#
# Usage: cmake -DCCSVM_DRIVER=<path> -DCCSVM_README=<path>
#              -P CheckReadmeFlags.cmake

if(NOT CCSVM_DRIVER OR NOT CCSVM_README)
  message(FATAL_ERROR "CCSVM_DRIVER and CCSVM_README are required")
endif()

execute_process(
  COMMAND ${CCSVM_DRIVER} --help
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE help)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "ccsvm --help exited ${rc}")
endif()

string(REGEX MATCHALL "--[a-z][a-z0-9-]*" help_flags "${help}")
list(REMOVE_DUPLICATES help_flags)
list(LENGTH help_flags n_help)
if(n_help LESS 20)
  message(FATAL_ERROR "only ${n_help} flags in --help; parse broke?")
endif()

file(READ ${CCSVM_README} readme)
string(FIND "${readme}" "<!-- driver-flags:begin -->" begin)
string(FIND "${readme}" "<!-- driver-flags:end -->" end)
if(begin EQUAL -1 OR end EQUAL -1 OR NOT begin LESS end)
  message(FATAL_ERROR
          "README has no <!-- driver-flags:begin/end --> section")
endif()
string(SUBSTRING "${readme}" ${begin} ${end} section)

string(REGEX MATCHALL "`--[a-z][a-z0-9-]*" readme_flags "${section}")
list(TRANSFORM readme_flags REPLACE "^`" "")
list(REMOVE_DUPLICATES readme_flags)

foreach(flag IN LISTS help_flags)
  list(FIND readme_flags ${flag} at)
  if(at EQUAL -1)
    message(FATAL_ERROR "--help flag ${flag} is missing from the "
            "README driver-flags section; update the table between "
            "the driver-flags markers")
  endif()
endforeach()

foreach(flag IN LISTS readme_flags)
  list(FIND help_flags ${flag} at)
  if(at EQUAL -1)
    message(FATAL_ERROR "README documents ${flag} but ccsvm --help "
            "does not know it; fix the table or the driver")
  endif()
endforeach()

list(LENGTH readme_flags n_readme)
message(STATUS "README flag table in sync with --help "
               "(${n_help} flags in help, ${n_readme} documented)")

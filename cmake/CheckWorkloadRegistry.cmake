# Test script: the driver's workload dispatch is registry-driven.
#
#   - --list-workloads exits 0 and names every paper workload and
#     every synth pattern
#   - an unknown --workload exits 2 and its error lists the registry
#     names (so the message cannot drift from the dispatch)
#   - a workload-parameter flag the selected workload ignores warns
#     on stderr but still runs
#
# Usage: cmake -DCCSVM_DRIVER=<path> -P CheckWorkloadRegistry.cmake

if(NOT CCSVM_DRIVER)
  message(FATAL_ERROR "CCSVM_DRIVER is required")
endif()

execute_process(
  COMMAND ${CCSVM_DRIVER} --list-workloads
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "--list-workloads exited ${rc}: ${err}")
endif()
foreach(name IN ITEMS matmul apsp barneshut spmm synth:padded
                      synth:false synth:hot synth:migratory
                      synth:prodcons synth:stream synth:ptrchase
                      synth:readmostly)
  if(NOT out MATCHES "${name}")
    message(FATAL_ERROR "--list-workloads is missing '${name}':\n"
                        "${out}")
  endif()
endforeach()

execute_process(
  COMMAND ${CCSVM_DRIVER} --workload definitely-not-a-workload
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 2)
  message(FATAL_ERROR "unknown workload exited ${rc}, want 2")
endif()
if(NOT err MATCHES "unknown workload" OR
   NOT err MATCHES "synth:migratory")
  message(FATAL_ERROR "unknown-workload error does not list the "
                      "registry names:\n${err}")
endif()

execute_process(
  COMMAND ${CCSVM_DRIVER} --workload synth:padded --iters 4
          --density 0.5
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "run with ignored flag exited ${rc}: ${err}")
endif()
if(NOT err MATCHES "warning: --density is ignored")
  message(FATAL_ERROR "expected an ignored-flag warning for "
                      "--density, got:\n${err}")
endif()

message(STATUS "workload registry checks ok")

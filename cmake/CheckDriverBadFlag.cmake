# Test script: the ccsvm driver must reject unknown flags and bad
# flag values fast, with a clear error plus a usage hint on stderr and
# exit code 2 (not silently ignore them and simulate anyway).
#
# Usage: cmake -DCCSVM_DRIVER=<path> -P CheckDriverBadFlag.cmake

if(NOT CCSVM_DRIVER)
  message(FATAL_ERROR "CCSVM_DRIVER is required")
endif()

# Unknown option: error + usage hint, exit 2.
execute_process(
  COMMAND ${CCSVM_DRIVER} --definitely-not-a-flag
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 2)
  message(FATAL_ERROR "unknown flag exited ${rc}, want 2\n"
                      "stdout: ${out}\nstderr: ${err}")
endif()
if(NOT err MATCHES "unknown option '--definitely-not-a-flag'")
  message(FATAL_ERROR "missing unknown-option error on stderr:\n"
                      "${err}")
endif()
if(NOT err MATCHES "usage:")
  message(FATAL_ERROR "missing usage hint on stderr:\n${err}")
endif()

# Bad value for a validated flag: error naming the flag, exit 2.
execute_process(
  COMMAND ${CCSVM_DRIVER} --protocol mosi
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 2)
  message(FATAL_ERROR "bad --protocol exited ${rc}, want 2\n"
                      "stdout: ${out}\nstderr: ${err}")
endif()
if(NOT err MATCHES "--protocol")
  message(FATAL_ERROR "bad --protocol error does not name the "
                      "flag:\n${err}")
endif()

# Flag missing its argument: exit 2.
execute_process(
  COMMAND ${CCSVM_DRIVER} --workload
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 2)
  message(FATAL_ERROR "missing argument exited ${rc}, want 2\n"
                      "stdout: ${out}\nstderr: ${err}")
endif()

message(STATUS "driver flag validation ok")

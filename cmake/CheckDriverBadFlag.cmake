# Test script: the ccsvm driver must reject unknown flags and bad
# flag values fast, with a clear error plus a usage hint on stderr and
# exit code 2 (not silently ignore them and simulate anyway).
#
# Usage: cmake -DCCSVM_DRIVER=<path> -P CheckDriverBadFlag.cmake

if(NOT CCSVM_DRIVER)
  message(FATAL_ERROR "CCSVM_DRIVER is required")
endif()

# Unknown option: error + usage hint, exit 2.
execute_process(
  COMMAND ${CCSVM_DRIVER} --definitely-not-a-flag
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 2)
  message(FATAL_ERROR "unknown flag exited ${rc}, want 2\n"
                      "stdout: ${out}\nstderr: ${err}")
endif()
if(NOT err MATCHES "unknown option '--definitely-not-a-flag'")
  message(FATAL_ERROR "missing unknown-option error on stderr:\n"
                      "${err}")
endif()
if(NOT err MATCHES "usage:")
  message(FATAL_ERROR "missing usage hint on stderr:\n${err}")
endif()

# Bad value for a validated flag: error naming the flag AND the
# accepted values (from the same enum table --list-protocols prints),
# exit 2. All three --protocol-family flags share the path.
foreach(flag --protocol --cpu-protocol --mttop-protocol)
  execute_process(
    COMMAND ${CCSVM_DRIVER} ${flag} mosi
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT rc EQUAL 2)
    message(FATAL_ERROR "bad ${flag} exited ${rc}, want 2\n"
                        "stdout: ${out}\nstderr: ${err}")
  endif()
  if(NOT err MATCHES "${flag}")
    message(FATAL_ERROR "bad ${flag} error does not name the "
                        "flag:\n${err}")
  endif()
  if(NOT err MATCHES "msi, mesi, moesi")
    message(FATAL_ERROR "bad ${flag} error does not list the "
                        "accepted protocol names:\n${err}")
  endif()
endforeach()

# The bank-layer policy flags share the same validated-enum path.
execute_process(
  COMMAND ${CCSVM_DRIVER} --slice-hash crc32
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 2)
  message(FATAL_ERROR "bad --slice-hash exited ${rc}, want 2\n"
                      "stdout: ${out}\nstderr: ${err}")
endif()
if(NOT err MATCHES "--slice-hash" OR NOT err MATCHES "mod, xorfold, skew")
  message(FATAL_ERROR "bad --slice-hash error does not name the flag "
                      "and the accepted hashes:\n${err}")
endif()

execute_process(
  COMMAND ${CCSVM_DRIVER} --l2-replace plru
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 2)
  message(FATAL_ERROR "bad --l2-replace exited ${rc}, want 2\n"
                      "stdout: ${out}\nstderr: ${err}")
endif()
if(NOT err MATCHES "--l2-replace" OR NOT err MATCHES "lru, fifo, rand, region")
  message(FATAL_ERROR "bad --l2-replace error does not name the flag "
                      "and the accepted replacers:\n${err}")
endif()

# Geometry the cache arrays cannot index: zero or non-power-of-two
# set counts must be rejected up front with a diagnostic, exit 2.
foreach(geom "--l2-banks;0" "--l2-bank-kb;0" "--l2-bank-kb;3"
             "--cpu-l1-kb;0")
  execute_process(
    COMMAND ${CCSVM_DRIVER} ${geom} --workload synth:false --iters 1
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT rc EQUAL 2)
    message(FATAL_ERROR "bad geometry '${geom}' exited ${rc}, "
                        "want 2\nstdout: ${out}\nstderr: ${err}")
  endif()
endforeach()
execute_process(
  COMMAND ${CCSVM_DRIVER} --l2-bank-kb 3 --workload synth:false
          --iters 1
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT err MATCHES "power of two")
  message(FATAL_ERROR "non-power-of-two set count diagnostic does "
                      "not say so:\n${err}")
endif()

# The --list flags must enumerate their tables, one name per line.
execute_process(
  COMMAND ${CCSVM_DRIVER} --list-protocols
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "--list-protocols exited ${rc}\n"
                      "stderr: ${err}")
endif()
if(NOT out MATCHES "msi\nmesi\nmoesi")
  message(FATAL_ERROR "--list-protocols output unexpected:\n${out}")
endif()

execute_process(
  COMMAND ${CCSVM_DRIVER} --list-slice-hashes
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "--list-slice-hashes exited ${rc}\n"
                      "stderr: ${err}")
endif()
if(NOT out MATCHES "mod\nxorfold\nskew")
  message(FATAL_ERROR "--list-slice-hashes output unexpected:\n"
                      "${out}")
endif()

execute_process(
  COMMAND ${CCSVM_DRIVER} --list-replacers
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "--list-replacers exited ${rc}\n"
                      "stderr: ${err}")
endif()
if(NOT out MATCHES "lru\nfifo\nrand\nregion")
  message(FATAL_ERROR "--list-replacers output unexpected:\n${out}")
endif()

# Flag missing its argument: exit 2.
execute_process(
  COMMAND ${CCSVM_DRIVER} --workload
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 2)
  message(FATAL_ERROR "missing argument exited ${rc}, want 2\n"
                      "stdout: ${out}\nstderr: ${err}")
endif()

message(STATUS "driver flag validation ok")

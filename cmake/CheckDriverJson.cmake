# Test script: run the ccsvm driver with --json and assert the output
# is valid JSON carrying simulated ticks and DRAM-transaction counters.
#
# Usage: cmake -DCCSVM_DRIVER=<path> -DCCSVM_JSON_OUT=<path>
#              -P CheckDriverJson.cmake

if(NOT CCSVM_DRIVER OR NOT CCSVM_JSON_OUT)
  message(FATAL_ERROR "CCSVM_DRIVER and CCSVM_JSON_OUT are required")
endif()

execute_process(
  COMMAND ${CCSVM_DRIVER} --workload matmul --n 8
          --json ${CCSVM_JSON_OUT}
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "driver exited ${rc}\nstdout: ${out}\n"
                      "stderr: ${err}")
endif()

file(READ ${CCSVM_JSON_OUT} doc)

# string(JSON ...) hard-errors on malformed JSON or a missing key,
# which is exactly the assertion we want.
string(JSON ticks GET "${doc}" sim ticks)
string(JSON dram GET "${doc}" sim dram_accesses)
string(JSON correct GET "${doc}" sim correct)
string(JSON dram_reads GET "${doc}" stats counters dram.reads)
string(JSON sim_ticks_counter GET "${doc}" stats counters sim.ticks)

if(ticks LESS_EQUAL 0)
  message(FATAL_ERROR "sim.ticks not positive: ${ticks}")
endif()
if(NOT correct STREQUAL "ON" AND NOT correct STREQUAL "true")
  message(FATAL_ERROR "workload output failed validation: ${correct}")
endif()
if(NOT ticks EQUAL sim_ticks_counter)
  message(FATAL_ERROR "sim.ticks counter (${sim_ticks_counter}) "
                      "disagrees with summary (${ticks})")
endif()

# --- --json - : machine-parseable stdout ----------------------------
# --iters is a synth-only flag, so matmul warns about it; the warning
# (and the run summary) must land on stderr, leaving stdout pure JSON.
execute_process(
  COMMAND ${CCSVM_DRIVER} --workload matmul --n 8 --iters 4 --json -
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE stdout_doc
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "--json - run exited ${rc}\nstderr: ${err}")
endif()
string(JSON stdout_ticks GET "${stdout_doc}" sim ticks)
if(NOT stdout_ticks EQUAL ticks)
  message(FATAL_ERROR "--json - ticks (${stdout_ticks}) disagrees "
                      "with --json FILE (${ticks})")
endif()
if(NOT err MATCHES "warning")
  message(FATAL_ERROR "ignored-flag warning missing from stderr: "
                      "${err}")
endif()
if(NOT err MATCHES "workload=matmul")
  message(FATAL_ERROR "run summary not on stderr under --json -: "
                      "${err}")
endif()
if(stdout_doc MATCHES "warning" OR stdout_doc MATCHES "workload=")
  message(FATAL_ERROR "human-facing output leaked into stdout JSON:\n"
                      "${stdout_doc}")
endif()

message(STATUS "driver JSON ok: ticks=${ticks} dram=${dram} "
               "dram.reads=${dram_reads}; --json - stdout is pure "
               "JSON")

# Test script: the parallel sweep engine's determinism contract at
# the CLI boundary. A multi-point sweep (comma lists on --workload and
# --protocol) must emit a byte-identical JSON file whatever --jobs is:
#
#   - --jobs 1 (sequential, calling thread) vs --jobs 4 (worker pool)
#     over a 3-workload x 2-protocol grid: the two files must match
#     byte for byte. Any cross-instance mutable state, any
#     scheduling-order leak into the stats, any worker-count metadata
#     in the file shows up here as a diff.
#   - Every point in the sweep must pass its workload's validation
#     ("correct": true) and the grid must have exactly
#     |workloads| x |protocols| points in workload-major order.
#   - A single-point run through the sweep path must stay
#     byte-identical to the historical single-run JSON shape (no
#     "sweep" wrapper).
#
# Usage: cmake -DCCSVM_DRIVER=<path> -DCCSVM_OUT_DIR=<dir>
#              -P CheckParallelSweep.cmake

if(NOT CCSVM_DRIVER OR NOT CCSVM_OUT_DIR)
  message(FATAL_ERROR "CCSVM_DRIVER and CCSVM_OUT_DIR are required")
endif()

file(MAKE_DIRECTORY ${CCSVM_OUT_DIR})

set(workloads matmul synth:hot synth:migratory)
set(protocols msi moesi)
set(grid --workload matmul,synth:hot,synth:migratory
    --protocol msi,moesi --n 12 --iters 16)

function(run_sweep json jobs)
  execute_process(
    COMMAND ${CCSVM_DRIVER} ${grid} --jobs ${jobs} --json ${json}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "sweep --jobs ${jobs} exited ${rc}\n"
                        "stdout: ${out}\nstderr: ${err}")
  endif()
endfunction()

# --- 1. byte-identity: --jobs 1 vs --jobs 4 -------------------------
set(seq ${CCSVM_OUT_DIR}/psweep_jobs1.json)
set(par ${CCSVM_OUT_DIR}/psweep_jobs4.json)
run_sweep(${seq} 1)
run_sweep(${par} 4)

file(READ ${seq} seq_doc)
file(READ ${par} par_doc)
if(NOT seq_doc STREQUAL par_doc)
  message(FATAL_ERROR "sweep JSON differs between --jobs 1 and "
          "--jobs 4:\n--- jobs 1:\n${seq_doc}\n--- jobs 4:\n"
          "${par_doc}")
endif()

# --- 2. grid shape and per-point validation -------------------------
list(LENGTH workloads nwl)
list(LENGTH protocols nproto)
math(EXPR want_points "${nwl} * ${nproto}")
string(JSON got_points GET "${seq_doc}" sweep points)
if(NOT got_points EQUAL want_points)
  message(FATAL_ERROR "sweep reports ${got_points} points, want "
          "${want_points}")
endif()

math(EXPR last "${want_points} - 1")
set(idx 0)
foreach(wl IN LISTS workloads)
  foreach(proto IN LISTS protocols)
    string(JSON pt GET "${seq_doc}" points ${idx})
    string(JSON got_wl GET "${pt}" workload)
    string(JSON got_proto GET "${pt}" machine protocol)
    string(JSON correct GET "${pt}" sim correct)
    if(NOT got_wl STREQUAL wl OR NOT got_proto STREQUAL proto)
      message(FATAL_ERROR "point ${idx}: got ${got_wl}/${got_proto}, "
              "want ${wl}/${proto} (workload-major order)")
    endif()
    if(NOT correct STREQUAL "ON" AND NOT correct STREQUAL "true")
      message(FATAL_ERROR "point ${idx} (${wl}/${proto}): failed "
              "validation")
    endif()
    math(EXPR idx "${idx} + 1")
  endforeach()
endforeach()

# --- 3. single point keeps the historical JSON shape ----------------
set(single ${CCSVM_OUT_DIR}/psweep_single.json)
execute_process(
  COMMAND ${CCSVM_DRIVER} --workload matmul --n 12 --jobs 4
          --json ${single}
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "single-point --jobs 4 exited ${rc}\n"
                      "stdout: ${out}\nstderr: ${err}")
endif()
file(READ ${single} single_doc)
string(JSON sweep_key ERROR_VARIABLE no_sweep GET "${single_doc}"
       sweep)
if(no_sweep STREQUAL "NOTFOUND")
  message(FATAL_ERROR "single-point run emitted a sweep wrapper")
endif()
string(JSON wl GET "${single_doc}" workload)
if(NOT wl STREQUAL "matmul")
  message(FATAL_ERROR "single-point JSON lost its historical shape")
endif()

message(STATUS "parallel sweep ok: ${want_points} points "
               "byte-identical at --jobs 1 vs --jobs 4")

# Test script: drive the ccsvm CLI over the L2/directory bank layer's
# two policy seams (home-slice hash, replacement policy) and assert
# the axis behaves as designed:
#
#   - a run with the defaults spelled out (--slice-hash mod
#     --l2-replace lru) is byte-identical (sim + stats JSON sections)
#     to a run with no policy flags at all, for matmul and
#     synth:false under every protocol: the seams must be true no-ops
#     at the default point, and the default point's stats must be
#     independent of --sim-threads
#   - a power-of-two strided stream, the access class mod hashing
#     pins onto one bank, spreads under xorfold: the hottest bank's
#     peak directory occupancy strictly drops
#   - the region-aware replacer prefers evicting non-coherent lines:
#     on a region-annotated matmul squeezed into tiny banks, conflict
#     evictions of coherent lines strictly drop vs lru while the
#     pattern still conflicts (nonzero total evictions both ways)
#   - a committed conflict-pattern trace replays correctly under
#     every hash x replacer pair, with both lists harvested from the
#     driver's own --list-slice-hashes / --list-replacers so the
#     matrix cannot drift when a policy is added
#
# Usage: cmake -DCCSVM_DRIVER=<path> -DCCSVM_OUT_DIR=<dir>
#              -DCCSVM_TRACES_DIR=<dir> -P CheckBankSweep.cmake

if(NOT CCSVM_DRIVER OR NOT CCSVM_OUT_DIR OR NOT CCSVM_TRACES_DIR)
  message(FATAL_ERROR
          "CCSVM_DRIVER, CCSVM_OUT_DIR and CCSVM_TRACES_DIR are "
          "required")
endif()

file(MAKE_DIRECTORY ${CCSVM_OUT_DIR})

# Harvest the driver's own enum tables so the sweep tracks additions.
function(list_from_driver flag out_var)
  execute_process(
    COMMAND ${CCSVM_DRIVER} ${flag}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "${flag} exited ${rc}\nstderr: ${err}")
  endif()
  string(STRIP "${out}" out)
  string(REPLACE "\n" ";" names "${out}")
  set(${out_var} ${names} PARENT_SCOPE)
endfunction()

list_from_driver(--list-protocols protocols)
list_from_driver(--list-slice-hashes hashes)
list_from_driver(--list-replacers replacers)

# Run the driver, fail loudly, and require a passing validation.
function(run_ccsvm json)
  execute_process(
    COMMAND ${CCSVM_DRIVER} ${ARGN} --json ${json}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "ccsvm ${ARGN} exited ${rc}\n"
                        "stdout: ${out}\nstderr: ${err}")
  endif()
  file(READ ${json} doc)
  string(JSON correct GET "${doc}" sim correct)
  if(NOT correct STREQUAL "ON" AND NOT correct STREQUAL "true")
    message(FATAL_ERROR "ccsvm ${ARGN}: failed validation")
  endif()
endfunction()

# Sum dirN.<suffix> over every bank of the machine in ${doc}.
function(sum_dir_counter doc suffix out_var)
  string(JSON banks GET "${doc}" machine l2_banks)
  set(total 0)
  math(EXPR last "${banks} - 1")
  foreach(b RANGE ${last})
    string(JSON v GET "${doc}" stats counters dir${b}.${suffix})
    math(EXPR total "${total} + ${v}")
  endforeach()
  set(${out_var} ${total} PARENT_SCOPE)
endfunction()

# Max of dirN.<suffix> over every bank of the machine in ${doc}.
function(max_dir_counter doc suffix out_var)
  string(JSON banks GET "${doc}" machine l2_banks)
  set(best 0)
  math(EXPR last "${banks} - 1")
  foreach(b RANGE ${last})
    string(JSON v GET "${doc}" stats counters dir${b}.${suffix})
    if(v GREATER best)
      set(best ${v})
    endif()
  endforeach()
  set(${out_var} ${best} PARENT_SCOPE)
endfunction()

# --- 1. explicit defaults are byte-identical to no flags at all -----
# The seams land in the hot path of every bank select and every
# victim choice; this is the proof they cost nothing behaviorally.
# "|"-separated so the flag lists survive CMake list flattening.
set(identity_workloads
    "--workload|matmul|--n|8"
    "--workload|synth:false|--iters|4")
foreach(proto IN LISTS protocols)
  foreach(wl_packed IN LISTS identity_workloads)
    string(REPLACE "|" ";" wl "${wl_packed}")
    string(REPLACE "|" "_" wl_tag "${wl_packed}")
    string(REGEX REPLACE "[^a-z0-9_]" "" wl_tag "${wl_tag}")
    set(base ${CCSVM_OUT_DIR}/bank_base_${proto}_${wl_tag}.json)
    set(expl ${CCSVM_OUT_DIR}/bank_expl_${proto}_${wl_tag}.json)
    run_ccsvm(${base} ${wl} --protocol ${proto})
    run_ccsvm(${expl} ${wl} --protocol ${proto}
              --slice-hash mod --l2-replace lru)
    file(READ ${base} base_doc)
    file(READ ${expl} expl_doc)
    # The machine section legitimately echoes the policy names, so
    # compare the behavioral sections byte for byte.
    foreach(section sim stats)
      string(JSON a GET "${base_doc}" ${section})
      string(JSON b GET "${expl_doc}" ${section})
      if(NOT a STREQUAL b)
        message(FATAL_ERROR
                "${proto}/${wl_tag}: explicit --slice-hash mod "
                "--l2-replace lru changed the ${section} section:\n"
                "--- defaults:\n${a}\n--- explicit:\n${b}")
      endif()
    endforeach()
  endforeach()
endforeach()

# The default point's stats must also be --sim-threads invariant
# (the machine section echoes sim_threads, so compare stats only).
foreach(wl_packed IN LISTS identity_workloads)
  string(REPLACE "|" ";" wl "${wl_packed}")
  string(REPLACE "|" "_" wl_tag "${wl_packed}")
  string(REGEX REPLACE "[^a-z0-9_]" "" wl_tag "${wl_tag}")
  run_ccsvm(${CCSVM_OUT_DIR}/bank_t1_${wl_tag}.json ${wl}
            --slice-hash mod --l2-replace lru --sim-threads 1)
  run_ccsvm(${CCSVM_OUT_DIR}/bank_t4_${wl_tag}.json ${wl}
            --slice-hash mod --l2-replace lru --sim-threads 4)
  file(READ ${CCSVM_OUT_DIR}/bank_t1_${wl_tag}.json t1_doc)
  file(READ ${CCSVM_OUT_DIR}/bank_t4_${wl_tag}.json t4_doc)
  string(JSON t1_stats GET "${t1_doc}" stats)
  string(JSON t4_stats GET "${t4_doc}" stats)
  if(NOT t1_stats STREQUAL t4_stats)
    message(FATAL_ERROR "${wl_tag}: default bank policies are not "
            "--sim-threads invariant:\n--- 1 thread:\n${t1_stats}\n"
            "--- 4 threads:\n${t4_stats}")
  endif()
endforeach()

# --- 2. xorfold spreads the strided stream mod pins on one bank -----
# stride 256 = one access every 4 blocks: under mod with 4 banks the
# home bank is a pure function of the bits the stride holds constant.
set(skew_cfg --workload synth:stream --iters 1 --synth-threads 16
    --footprint-kb 1024 --stride 256)
run_ccsvm(${CCSVM_OUT_DIR}/bank_skew_mod.json ${skew_cfg}
          --slice-hash mod)
run_ccsvm(${CCSVM_OUT_DIR}/bank_skew_xorfold.json ${skew_cfg}
          --slice-hash xorfold)
file(READ ${CCSVM_OUT_DIR}/bank_skew_mod.json mod_doc)
file(READ ${CCSVM_OUT_DIR}/bank_skew_xorfold.json xor_doc)
max_dir_counter("${mod_doc}" occupancy mod_occ)
max_dir_counter("${xor_doc}" occupancy xor_occ)
message(STATUS "strided stream peak bank occupancy: mod=${mod_occ} "
               "xorfold=${xor_occ}")
if(NOT xor_occ LESS mod_occ)
  message(FATAL_ERROR "xorfold did not lower the hottest bank's peak "
          "occupancy on a 256B-strided stream (${xor_occ} vs mod's "
          "${mod_occ})")
endif()

# --- 3. the region replacer shields coherent lines under conflict ---
# Tiny banks (4 sets) put matmul's region-annotated read-mostly
# inputs and its coherent output in the same sets; lru evicts
# whatever is oldest, region spends the evictions on annotated lines.
set(region_cfg --workload matmul --n 32 --region-hints
    --l2-bank-kb 4)
run_ccsvm(${CCSVM_OUT_DIR}/bank_rep_lru.json ${region_cfg}
          --l2-replace lru)
run_ccsvm(${CCSVM_OUT_DIR}/bank_rep_region.json ${region_cfg}
          --l2-replace region)
file(READ ${CCSVM_OUT_DIR}/bank_rep_lru.json lru_doc)
file(READ ${CCSVM_OUT_DIR}/bank_rep_region.json region_doc)
sum_dir_counter("${lru_doc}" conflictEvictions lru_evs)
sum_dir_counter("${region_doc}" conflictEvictions region_evs)
sum_dir_counter("${lru_doc}" conflictEvictions.coherent lru_coh)
sum_dir_counter("${region_doc}" conflictEvictions.coherent
                region_coh)
message(STATUS "conflict evictions (coherent/total): "
               "lru=${lru_coh}/${lru_evs} "
               "region=${region_coh}/${region_evs}")
if(lru_evs EQUAL 0 OR region_evs EQUAL 0)
  message(FATAL_ERROR "the replacer probe config no longer "
          "conflicts (lru=${lru_evs}, region=${region_evs} total "
          "evictions); it proves nothing")
endif()
if(NOT region_coh LESS lru_coh)
  message(FATAL_ERROR "--l2-replace region did not lower coherent "
          "conflict evictions (${region_coh} vs lru's ${lru_coh})")
endif()

# --- 4. the committed conflict trace replays under every pair -------
set(trace ${CCSVM_TRACES_DIR}/synth_conflict.ccsvmt)
if(NOT EXISTS ${trace})
  message(FATAL_ERROR "missing committed trace ${trace}")
endif()
foreach(hash IN LISTS hashes)
  foreach(rep IN LISTS replacers)
    run_ccsvm(${CCSVM_OUT_DIR}/bank_replay_${hash}_${rep}.json
              --workload replay --trace ${trace}
              --slice-hash ${hash} --l2-replace ${rep})
  endforeach()
endforeach()

list(LENGTH protocols nproto)
list(LENGTH hashes nhash)
list(LENGTH replacers nrep)
message(STATUS "bank sweep ok: identity x ${nproto} protocols, "
               "occupancy skew, region replacer, replay x "
               "${nhash} hashes x ${nrep} replacers all hold")

# Test script: the partitioned event engine's determinism contract at
# the CLI boundary. One simulation advanced by conservative time
# windows must emit byte-identical JSON whatever --sim-threads is:
#
#   - --sim-threads 1 (windows run inline on the calling thread) vs
#     --sim-threads 4 (worker pool) across a
#     {matmul, synth:false} x {msi, moesi} grid. The partition/window
#     schedule is the same at any thread count and cross-partition
#     mailboxes commit in sorted (when, priority, srcPart, srcSeq)
#     order, so every tick count and every stat must match byte for
#     byte; any host-interleaving leak shows up here as a diff. Only
#     the echoed "sim_threads" field may differ, and is normalized
#     away before comparing.
#   - Every point must pass its workload's validation.
#   - CCSVM_SIM_THREADS=4 in the environment with no --sim-threads
#     flag must behave like the flag (same normalized bytes), since
#     that is how the test suites opt whole binaries into the
#     threaded engine.
#
# Usage: cmake -DCCSVM_DRIVER=<path> -DCCSVM_OUT_DIR=<dir>
#              -P CheckParallelEngine.cmake

if(NOT CCSVM_DRIVER OR NOT CCSVM_OUT_DIR)
  message(FATAL_ERROR "CCSVM_DRIVER and CCSVM_OUT_DIR are required")
endif()

file(MAKE_DIRECTORY ${CCSVM_OUT_DIR})

function(run_point json wl proto threads)
  execute_process(
    COMMAND ${CCSVM_DRIVER} --workload ${wl} --protocol ${proto}
            --n 16 --iters 16 --sim-threads ${threads} --json ${json}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR
            "${wl}/${proto} --sim-threads ${threads} exited ${rc}\n"
            "stdout: ${out}\nstderr: ${err}")
  endif()
endfunction()

# Drop the one legitimately thread-count-dependent field before
# comparing.
function(normalized var json)
  file(READ ${json} doc)
  string(REGEX REPLACE "\"sim_threads\": [0-9]+"
         "\"sim_threads\": 0" doc "${doc}")
  set(${var} "${doc}" PARENT_SCOPE)
endfunction()

foreach(wl matmul synth:false)
  foreach(proto msi moesi)
    string(REPLACE ":" "_" tag "${wl}_${proto}")
    set(seq ${CCSVM_OUT_DIR}/pengine_${tag}_t1.json)
    set(par ${CCSVM_OUT_DIR}/pengine_${tag}_t4.json)
    run_point(${seq} ${wl} ${proto} 1)
    run_point(${par} ${wl} ${proto} 4)

    normalized(seq_doc ${seq})
    normalized(par_doc ${par})
    if(NOT seq_doc STREQUAL par_doc)
      message(FATAL_ERROR "${wl}/${proto}: JSON differs between "
              "--sim-threads 1 and --sim-threads 4:\n"
              "--- threads 1:\n${seq_doc}\n"
              "--- threads 4:\n${par_doc}")
    endif()

    string(JSON correct GET "${seq_doc}" sim correct)
    if(NOT correct STREQUAL "ON" AND NOT correct STREQUAL "true")
      message(FATAL_ERROR "${wl}/${proto}: failed validation under "
              "the partitioned engine")
    endif()
    string(JSON threads GET "${par_doc}" machine sim_threads)
  endforeach()
endforeach()

# --- the CCSVM_SIM_THREADS environment knob -------------------------
set(env_json ${CCSVM_OUT_DIR}/pengine_env_t4.json)
execute_process(
  COMMAND ${CMAKE_COMMAND} -E env CCSVM_SIM_THREADS=4
          ${CCSVM_DRIVER} --workload matmul --protocol msi
          --n 16 --iters 16 --json ${env_json}
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "CCSVM_SIM_THREADS=4 run exited ${rc}\n"
                      "stdout: ${out}\nstderr: ${err}")
endif()
normalized(env_doc ${env_json})
normalized(flag_doc ${CCSVM_OUT_DIR}/pengine_matmul_msi_t4.json)
if(NOT env_doc STREQUAL flag_doc)
  message(FATAL_ERROR "CCSVM_SIM_THREADS=4 differs from "
          "--sim-threads 4:\n--- env:\n${env_doc}\n"
          "--- flag:\n${flag_doc}")
endif()
file(READ ${env_json} env_raw)
string(REGEX MATCH "\"sim_threads\": 4" echoed "${env_raw}")
if(NOT echoed)
  message(FATAL_ERROR "CCSVM_SIM_THREADS=4 not echoed in the JSON "
          "machine section:\n${env_raw}")
endif()

message(STATUS "parallel engine ok: 4 grid points byte-identical "
               "at --sim-threads 1 vs 4 (+ env knob)")

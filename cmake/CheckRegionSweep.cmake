# Test script: drive the ccsvm CLI over region attribute x protocol
# and assert the region-based coherence axis behaves as designed:
#
#   - a run with an explicit all-coherent --region covering the whole
#     guest heap is byte-identical (sim + stats JSON sections) to a
#     run with no region flags at all, per protocol: the default
#     region class must be a true no-op (PR-4 behavior preserved)
#   - synth:stream with its buffer marked bypass (--region-hints)
#     validates and pays strictly fewer L2 fills, strictly fewer
#     L1 fills (misses) and strictly fewer directory-initiated
#     invalidations (Inv messages + inclusive-eviction recalls) than
#     the coherent run, per protocol. The config makes the coherent
#     baseline recall-bound: the footprint (1 MB) overflows a shrunken
#     L2 (4 x 64 KB), so the inclusive directory continuously recalls
#     L1 copies — exactly the traffic an uncacheable region never
#     generates — while the bypass run's only invalidations are the
#     done-flag handshake's
#   - the bypass run actually exercises the bypass machinery
#     (dirN.bypassReads/bypassWrites > 0, zero in the coherent run)
#   - a MESI override region over the heap under an MSI chip removes
#     the read-then-write upgrade penalty on the stream buffer
#     (strictly fewer L1 upgrades than plain MSI), and matmul's
#     read-mostly annotation (--region-hints) validates under every
#     protocol
#
# The protocol list comes from the driver's own --list-protocols, so
# this sweep cannot drift when a protocol is added.
#
# Usage: cmake -DCCSVM_DRIVER=<path> -DCCSVM_OUT_DIR=<dir>
#              -P CheckRegionSweep.cmake

if(NOT CCSVM_DRIVER OR NOT CCSVM_OUT_DIR)
  message(FATAL_ERROR "CCSVM_DRIVER and CCSVM_OUT_DIR are required")
endif()

file(MAKE_DIRECTORY ${CCSVM_OUT_DIR})

execute_process(
  COMMAND ${CCSVM_DRIVER} --list-protocols
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE proto_out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "--list-protocols exited ${rc}\nstderr: ${err}")
endif()
string(STRIP "${proto_out}" proto_out)
string(REPLACE "\n" ";" protocols "${proto_out}")

# Run the driver, fail loudly, and require a passing validation.
function(run_ccsvm json)
  execute_process(
    COMMAND ${CCSVM_DRIVER} ${ARGN} --json ${json}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "ccsvm ${ARGN} exited ${rc}\n"
                        "stdout: ${out}\nstderr: ${err}")
  endif()
  file(READ ${json} doc)
  string(JSON correct GET "${doc}" sim correct)
  if(NOT correct STREQUAL "ON" AND NOT correct STREQUAL "true")
    message(FATAL_ERROR "ccsvm ${ARGN}: failed validation")
  endif()
endfunction()

# Sum dirN.<suffix> over every bank of the machine in ${doc}.
function(sum_dir_counter doc suffix out_var)
  string(JSON banks GET "${doc}" machine l2_banks)
  set(total 0)
  math(EXPR last "${banks} - 1")
  foreach(b RANGE ${last})
    string(JSON v GET "${doc}" stats counters dir${b}.${suffix})
    math(EXPR total "${total} + ${v}")
  endforeach()
  set(${out_var} ${total} PARENT_SCOPE)
endfunction()

# Sum <core>.l1.<suffix> over every CPU and MTTOP L1.
function(sum_l1_counter doc suffix out_var)
  string(JSON cpus GET "${doc}" machine cpu_cores)
  string(JSON mttops GET "${doc}" machine mttop_cores)
  set(total 0)
  math(EXPR last_cpu "${cpus} - 1")
  foreach(i RANGE ${last_cpu})
    string(JSON v GET "${doc}" stats counters cpu${i}.l1.${suffix})
    math(EXPR total "${total} + ${v}")
  endforeach()
  math(EXPR last_mttop "${mttops} - 1")
  foreach(j RANGE ${last_mttop})
    string(JSON v GET "${doc}" stats counters mttop${j}.l1.${suffix})
    math(EXPR total "${total} + ${v}")
  endforeach()
  set(${out_var} ${total} PARENT_SCOPE)
endfunction()

# The guest heap's fixed virtual window (vm::AddressLayout).
set(heap_region heap:0x20000000:0x40000000)

# --- 1. default-region runs are byte-identical to no-region runs ----
set(identity --workload synth:stream --iters 4)
foreach(proto IN LISTS protocols)
  set(base ${CCSVM_OUT_DIR}/region_base_${proto}.json)
  set(coh ${CCSVM_OUT_DIR}/region_coherent_${proto}.json)
  run_ccsvm(${base} ${identity} --protocol ${proto})
  run_ccsvm(${coh} ${identity} --protocol ${proto}
            --region ${heap_region}:coherent)
  file(READ ${base} base_doc)
  file(READ ${coh} coh_doc)
  # The machine section legitimately echoes the region table, so
  # compare the behavioral sections: sim summary and the full stats
  # registry, byte for byte.
  foreach(section sim stats)
    string(JSON a GET "${base_doc}" ${section})
    string(JSON b GET "${coh_doc}" ${section})
    if(NOT a STREQUAL b)
      message(FATAL_ERROR
              "--protocol ${proto}: explicit all-coherent region "
              "changed the ${section} section:\n--- no regions:\n"
              "${a}\n--- coherent region:\n${b}")
    endif()
  endforeach()
endforeach()

# --- 2. stream buffer bypass: fewer fills and invalidations ---------
set(stream_cfg --workload synth:stream --iters 1 --synth-threads 16
    --footprint-kb 1024 --stride 64 --l2-bank-kb 64)
foreach(proto IN LISTS protocols)
  set(coh ${CCSVM_OUT_DIR}/region_stream_coh_${proto}.json)
  set(byp ${CCSVM_OUT_DIR}/region_stream_byp_${proto}.json)
  run_ccsvm(${coh} ${stream_cfg} --protocol ${proto})
  run_ccsvm(${byp} ${stream_cfg} --protocol ${proto} --region-hints)
  file(READ ${coh} coh_doc)
  file(READ ${byp} byp_doc)

  foreach(side coh byp)
    sum_dir_counter("${${side}_doc}" fetches ${side}_fills)
    sum_dir_counter("${${side}_doc}" recalls ${side}_recalls)
    sum_dir_counter("${${side}_doc}" invsSent.cpu ${side}_invs_cpu)
    sum_dir_counter("${${side}_doc}" invsSent.mttop
                    ${side}_invs_mttop)
    sum_dir_counter("${${side}_doc}" bypassReads ${side}_breads)
    sum_dir_counter("${${side}_doc}" bypassWrites ${side}_bwrites)
    sum_l1_counter("${${side}_doc}" misses ${side}_l1_fills)
    math(EXPR ${side}_dirinvs "${${side}_invs_cpu} + ${${side}_invs_mttop} + ${${side}_recalls}")
  endforeach()

  message(STATUS
          "stream/${proto}: fills coh=${coh_fills} byp=${byp_fills}; "
          "dir invs coh=${coh_dirinvs} byp=${byp_dirinvs}; "
          "L1 fills coh=${coh_l1_fills} byp=${byp_l1_fills}; "
          "bypass ops=${byp_breads}r/${byp_bwrites}w")

  if(NOT byp_fills LESS coh_fills)
    message(FATAL_ERROR "stream/${proto}: bypass L2 fills "
            "(${byp_fills}) not strictly fewer than coherent "
            "(${coh_fills})")
  endif()
  if(NOT byp_l1_fills LESS coh_l1_fills)
    message(FATAL_ERROR "stream/${proto}: bypass L1 fills "
            "(${byp_l1_fills}) not strictly fewer than coherent "
            "(${coh_l1_fills})")
  endif()
  if(NOT byp_dirinvs LESS coh_dirinvs)
    message(FATAL_ERROR "stream/${proto}: bypass directory "
            "invalidations (${byp_dirinvs}) not strictly fewer than "
            "coherent (${coh_dirinvs})")
  endif()
  if(byp_breads EQUAL 0 OR byp_bwrites EQUAL 0)
    message(FATAL_ERROR "stream/${proto}: bypass run issued no "
            "bypass ops (${byp_breads}r/${byp_bwrites}w)")
  endif()
  math(EXPR coh_bypass_ops "${coh_breads} + ${coh_bwrites}")
  if(NOT coh_bypass_ops EQUAL 0)
    message(FATAL_ERROR "stream/${proto}: coherent run issued "
            "${coh_bypass_ops} bypass ops")
  endif()
endforeach()

# --- 3. protocol-override regions ------------------------------------
# A MESI override over the heap under an MSI chip: stream's
# read-then-write loop gets clean-exclusive fills, so the explicit
# upgrade transactions MSI pays must strictly drop.
set(ovr_cfg --workload synth:stream --iters 2 --footprint-kb 64)
run_ccsvm(${CCSVM_OUT_DIR}/region_msi_plain.json ${ovr_cfg}
          --protocol msi)
run_ccsvm(${CCSVM_OUT_DIR}/region_msi_override.json ${ovr_cfg}
          --protocol msi --region ${heap_region}:mesi)
file(READ ${CCSVM_OUT_DIR}/region_msi_plain.json plain_doc)
file(READ ${CCSVM_OUT_DIR}/region_msi_override.json ovr_doc)
sum_l1_counter("${plain_doc}" upgrades plain_upgrades)
sum_l1_counter("${ovr_doc}" upgrades ovr_upgrades)
message(STATUS "override msi->mesi: upgrades plain=${plain_upgrades} "
               "override=${ovr_upgrades}")
if(NOT ovr_upgrades LESS plain_upgrades)
  message(FATAL_ERROR "MESI-override region under MSI did not reduce "
          "L1 upgrades (${ovr_upgrades} vs ${plain_upgrades})")
endif()

# --- 4. region misuse is handled, not crashed -----------------------
# Overlapping --region flags must exit 2 with a CLI diagnostic.
execute_process(
  COMMAND ${CCSVM_DRIVER} --workload synth:stream --iters 2
          --region a:0x20000000:0x2000:bypass
          --region b:0x20001000:0x2000:coherent
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 2)
  message(FATAL_ERROR "overlapping --region flags exited ${rc} "
          "(want 2)\nstdout: ${out}\nstderr: ${err}")
endif()
if(NOT err MATCHES "overlaps")
  message(FATAL_ERROR "overlapping --region diagnostic missing: "
          "${err}")
endif()

# An explicit region covering a workload buffer takes precedence over
# the workload's --region-hints annotation: the run must still
# validate (hint yields with a warning) instead of aborting on the
# region-table overlap assert.
run_ccsvm(${CCSVM_OUT_DIR}/region_precedence.json
          --workload synth:stream --iters 2 --region-hints
          --region ${heap_region}:coherent)

# matmul's read-mostly annotation must validate under every protocol.
foreach(proto IN LISTS protocols)
  run_ccsvm(${CCSVM_OUT_DIR}/region_matmul_${proto}.json
            --workload matmul --n 16 --protocol ${proto}
            --region-hints)
endforeach()

list(LENGTH protocols nproto)
message(STATUS "region sweep ok: ${nproto} protocols x "
               "{identity, bypass, override} all hold")

# Test script: drive all 9 CPU x MTTOP protocol pairs through the
# driver on the migratory synth pattern and assert the heterogeneous
# axis behaves as designed:
#
#   - every pair validates and echoes cpu_protocol/mttop_protocol in
#     the JSON machine section
#   - homogeneous pairs are byte-identical to the corresponding
#     single --protocol runs (the cluster split must be invisible
#     when both sides run the same protocol)
#   - the headline mixed pair (CPU moesi, MTTOP msi) pays strictly
#     more MTTOP-side dirty-read writebacks than all-moesi (whose O
#     state absorbs every migratory hand-off)
#
# The protocol list comes from the driver's own --list-protocols, so
# this sweep cannot drift when a protocol is added.
#
# Usage: cmake -DCCSVM_DRIVER=<path> -DCCSVM_OUT_DIR=<dir>
#              -P CheckHeteroSweep.cmake

if(NOT CCSVM_DRIVER OR NOT CCSVM_OUT_DIR)
  message(FATAL_ERROR "CCSVM_DRIVER and CCSVM_OUT_DIR are required")
endif()

file(MAKE_DIRECTORY ${CCSVM_OUT_DIR})

execute_process(
  COMMAND ${CCSVM_DRIVER} --list-protocols
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE proto_out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "--list-protocols exited ${rc}\nstderr: ${err}")
endif()
string(STRIP "${proto_out}" proto_out)
string(REPLACE "\n" ";" protocols "${proto_out}")
list(LENGTH protocols nproto)
if(nproto LESS 3)
  message(FATAL_ERROR "--list-protocols returned only ${nproto} "
                      "protocols: '${proto_out}'")
endif()

set(workload --workload synth:migratory --iters 12)

# Single-protocol reference runs for the homogeneous comparison.
foreach(proto IN LISTS protocols)
  set(json ${CCSVM_OUT_DIR}/hetero_single_${proto}.json)
  execute_process(
    COMMAND ${CCSVM_DRIVER} ${workload} --protocol ${proto}
            --json ${json}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "--protocol ${proto} exited ${rc}\n"
                        "stdout: ${out}\nstderr: ${err}")
  endif()
endforeach()

# All CPU x MTTOP pairs.
foreach(cpu IN LISTS protocols)
  foreach(mttop IN LISTS protocols)
    set(json ${CCSVM_OUT_DIR}/hetero_${cpu}_${mttop}.json)
    execute_process(
      COMMAND ${CCSVM_DRIVER} ${workload} --cpu-protocol ${cpu}
              --mttop-protocol ${mttop} --json ${json}
      RESULT_VARIABLE rc
      OUTPUT_VARIABLE out
      ERROR_VARIABLE err)
    if(NOT rc EQUAL 0)
      message(FATAL_ERROR "pair ${cpu}/${mttop} exited ${rc}\n"
                          "stdout: ${out}\nstderr: ${err}")
    endif()

    file(READ ${json} doc)
    string(JSON correct GET "${doc}" sim correct)
    if(NOT correct STREQUAL "ON" AND NOT correct STREQUAL "true")
      message(FATAL_ERROR "${cpu}/${mttop}: failed validation")
    endif()
    string(JSON echoed_cpu GET "${doc}" machine cpu_protocol)
    string(JSON echoed_mttop GET "${doc}" machine mttop_protocol)
    if(NOT echoed_cpu STREQUAL cpu OR
       NOT echoed_mttop STREQUAL mttop)
      message(FATAL_ERROR "${cpu}/${mttop}: JSON echoes "
                          "'${echoed_cpu}/${echoed_mttop}'")
    endif()

    # Homogeneous pairs must be indistinguishable from the single
    # --protocol run, stat for stat, byte for byte.
    if(cpu STREQUAL mttop)
      execute_process(
        COMMAND ${CMAKE_COMMAND} -E compare_files ${json}
                ${CCSVM_OUT_DIR}/hetero_single_${cpu}.json
        RESULT_VARIABLE same)
      if(NOT same EQUAL 0)
        message(FATAL_ERROR "pair ${cpu}/${mttop} differs from the "
                            "single --protocol ${cpu} run")
      endif()
    endif()

    # Sum the per-cluster dirty-read writebacks over every bank.
    string(JSON banks GET "${doc}" machine l2_banks)
    set(swb_mttop 0)
    math(EXPR last_bank "${banks} - 1")
    foreach(b RANGE ${last_bank})
      string(JSON v GET "${doc}" stats counters
             dir${b}.sharingWb.mttop)
      math(EXPR swb_mttop "${swb_mttop} + ${v}")
    endforeach()
    set(swb_mttop_${cpu}_${mttop} ${swb_mttop})
    message(STATUS "${cpu}/${mttop}: mttop sharingWb=${swb_mttop}")
  endforeach()
endforeach()

# The migratory pattern's hand-offs live in the MTTOP cluster: with
# MOESI CPUs but MSI MTTOPs every hand-off read pays a writeback at
# the home, while all-moesi absorbs them all in the O state.
if(NOT swb_mttop_moesi_msi GREATER swb_mttop_moesi_moesi)
  message(FATAL_ERROR
          "cpu-moesi/mttop-msi migratory MTTOP writebacks "
          "(${swb_mttop_moesi_msi}) not strictly greater than "
          "all-moesi (${swb_mttop_moesi_moesi})")
endif()

message(STATUS "hetero sweep ok: ${nproto}x${nproto} pairs; "
               "migratory mttop sharingWb moesi/msi="
               "${swb_mttop_moesi_msi} vs moesi/moesi="
               "${swb_mttop_moesi_moesi}")

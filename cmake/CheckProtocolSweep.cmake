# Test script: run the driver's matmul workload under every coherence
# protocol and assert the protocol axis behaves as designed:
#
#   - each run validates and echoes its protocol in the JSON summary
#   - msi (no E, no O) pays strictly more writebacks (off-chip plus
#     dirty-read writebacks) and at least as many invalidations as
#     moesi, whose Owned state absorbs dirty sharing
#
# Usage: cmake -DCCSVM_DRIVER=<path> -DCCSVM_OUT_DIR=<dir>
#              -P CheckProtocolSweep.cmake

if(NOT CCSVM_DRIVER OR NOT CCSVM_OUT_DIR)
  message(FATAL_ERROR "CCSVM_DRIVER and CCSVM_OUT_DIR are required")
endif()

file(MAKE_DIRECTORY ${CCSVM_OUT_DIR})

foreach(proto IN ITEMS msi mesi moesi)
  set(json ${CCSVM_OUT_DIR}/protocol_sweep_${proto}.json)
  execute_process(
    COMMAND ${CCSVM_DRIVER} --workload matmul --n 16
            --protocol ${proto} --json ${json}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "--protocol ${proto} exited ${rc}\n"
                        "stdout: ${out}\nstderr: ${err}")
  endif()

  file(READ ${json} doc)
  string(JSON correct GET "${doc}" sim correct)
  if(NOT correct STREQUAL "ON" AND NOT correct STREQUAL "true")
    message(FATAL_ERROR "${proto}: workload failed validation")
  endif()
  string(JSON echoed GET "${doc}" machine protocol)
  if(NOT echoed STREQUAL proto)
    message(FATAL_ERROR "${proto}: JSON echoes protocol '${echoed}'")
  endif()

  # Machine geometry comes from the JSON itself, so the aggregation
  # below tracks any future change to the driver defaults.
  string(JSON banks GET "${doc}" machine l2_banks)
  string(JSON cpus GET "${doc}" machine cpu_cores)
  string(JSON mttops GET "${doc}" machine mttop_cores)

  # Writebacks: off-chip dirty evictions plus the dirty-read
  # writebacks protocols without an O state pay at the home.
  set(wb 0)
  math(EXPR last_bank "${banks} - 1")
  foreach(b RANGE ${last_bank})
    string(JSON v GET "${doc}" stats counters dir${b}.writebacks)
    math(EXPR wb "${wb} + ${v}")
    string(JSON v GET "${doc}" stats counters dir${b}.sharingWb)
    math(EXPR wb "${wb} + ${v}")
  endforeach()

  # Invalidations received across every L1.
  set(invs 0)
  math(EXPR last_cpu "${cpus} - 1")
  foreach(c RANGE ${last_cpu})
    string(JSON v GET "${doc}" stats counters cpu${c}.l1.invs)
    math(EXPR invs "${invs} + ${v}")
  endforeach()
  math(EXPR last_mttop "${mttops} - 1")
  foreach(mt RANGE ${last_mttop})
    string(JSON v GET "${doc}" stats counters mttop${mt}.l1.invs)
    math(EXPR invs "${invs} + ${v}")
  endforeach()

  set(wb_${proto} ${wb})
  set(invs_${proto} ${invs})
  message(STATUS "${proto}: wb=${wb} invs=${invs}")
endforeach()

if(NOT wb_msi GREATER wb_moesi)
  message(FATAL_ERROR "msi writebacks (${wb_msi}) not strictly "
                      "greater than moesi (${wb_moesi})")
endif()
if(invs_msi LESS invs_moesi)
  message(FATAL_ERROR "msi invalidations (${invs_msi}) fewer than "
                      "moesi (${invs_moesi})")
endif()
if(NOT wb_mesi GREATER wb_moesi)
  message(FATAL_ERROR "mesi writebacks (${wb_mesi}) not strictly "
                      "greater than moesi (${wb_moesi})")
endif()

message(STATUS "protocol sweep ok: wb msi=${wb_msi} mesi=${wb_mesi} "
               "moesi=${wb_moesi}; invs msi=${invs_msi} "
               "moesi=${invs_moesi}")

# Test script: the trace capture + replay contract at the CLI
# boundary (docs/TRACE_FORMAT.md):
#
#   - capture a synth:false run and a matmul run with --capture-out,
#     replay each with --workload replay --trace, and require the
#     "sim" + "stats" JSON sections byte-identical to the capture
#     run's (the workload/params echo legitimately differs)
#   - replay at --sim-threads 4 must match the --sim-threads 1 bytes
#   - the capture file itself must be byte-identical at
#     --sim-threads 1 vs 4 (records flush at window barriers)
#   - ccsvm-trace inspect/validate/stats must accept the fresh trace
#   - a shape-mismatched replay (--cpu-cores 2) must exit 2 with a
#     "machine shape" diagnostic; --workload replay without --trace
#     must exit 2
#   - every committed trace under CCSVM_TRACES_DIR (optional) must
#     pass ccsvm-trace validate and replay cleanly at default shape.
#
# Usage: cmake -DCCSVM_DRIVER=<path> -DCCSVM_TRACE_TOOL=<path>
#              -DCCSVM_OUT_DIR=<dir> [-DCCSVM_TRACES_DIR=<dir>]
#              -P CheckReplay.cmake

if(NOT CCSVM_DRIVER OR NOT CCSVM_TRACE_TOOL OR NOT CCSVM_OUT_DIR)
  message(FATAL_ERROR
          "CCSVM_DRIVER, CCSVM_TRACE_TOOL and CCSVM_OUT_DIR are "
          "required")
endif()

file(MAKE_DIRECTORY ${CCSVM_OUT_DIR})

function(run rc_var out_var err_var)
  execute_process(
    COMMAND ${ARGN}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  set(${rc_var} "${rc}" PARENT_SCOPE)
  set(${out_var} "${out}" PARENT_SCOPE)
  set(${err_var} "${err}" PARENT_SCOPE)
endfunction()

function(run_ok)
  run(rc out err ${ARGN})
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "command exited ${rc}: ${ARGN}\n"
            "stdout: ${out}\nstderr: ${err}")
  endif()
endfunction()

# The simulation result: everything in the JSON from the "sim"
# summary on (summary + full stats registry), with the echoed
# sim_threads normalized. The leading workload/params echo is the one
# part that legitimately differs between a capture run and its replay.
function(sim_and_stats var json)
  file(READ ${json} doc)
  string(REGEX REPLACE "\"sim_threads\": [0-9]+"
         "\"sim_threads\": 0" doc "${doc}")
  string(FIND "${doc}" "\"sim\": {" at)
  if(at EQUAL -1)
    message(FATAL_ERROR "${json} has no sim section:\n${doc}")
  endif()
  string(SUBSTRING "${doc}" ${at} -1 tail)
  set(${var} "${tail}" PARENT_SCOPE)
endfunction()

# --- capture -> replay, per workload --------------------------------

function(check_workload tag)
  set(wl_flags ${ARGN})
  set(trace ${CCSVM_OUT_DIR}/replay_${tag}.ccsvmt)
  set(cap_json ${CCSVM_OUT_DIR}/replay_${tag}_cap.json)
  run_ok(${CCSVM_DRIVER} ${wl_flags} --capture-out ${trace}
         --json ${cap_json})

  foreach(threads 1 4)
    set(rep_json ${CCSVM_OUT_DIR}/replay_${tag}_t${threads}.json)
    run_ok(${CCSVM_DRIVER} --workload replay --trace ${trace}
           --sim-threads ${threads} --json ${rep_json})
    sim_and_stats(cap_doc ${cap_json})
    sim_and_stats(rep_doc ${rep_json})
    if(NOT cap_doc STREQUAL rep_doc)
      message(FATAL_ERROR "${tag}: replay at --sim-threads "
              "${threads} diverged from the capture run:\n"
              "--- capture:\n${cap_doc}\n--- replay:\n${rep_doc}")
    endif()
  endforeach()

  # The trace file itself is part of the determinism contract.
  set(trace4 ${CCSVM_OUT_DIR}/replay_${tag}_t4.ccsvmt)
  run_ok(${CCSVM_DRIVER} ${wl_flags} --capture-out ${trace4}
         --sim-threads 4)
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files ${trace} ${trace4}
    RESULT_VARIABLE same)
  if(NOT same EQUAL 0)
    message(FATAL_ERROR "${tag}: capture file differs between "
            "--sim-threads 1 and 4")
  endif()

  # The inspection tool must accept what the capture path wrote.
  run_ok(${CCSVM_TRACE_TOOL} validate ${trace})
  run_ok(${CCSVM_TRACE_TOOL} inspect ${trace})
  run(rc out err ${CCSVM_TRACE_TOOL} stats ${trace})
  if(NOT rc EQUAL 0 OR NOT out MATCHES "by kind:")
    message(FATAL_ERROR "${tag}: ccsvm-trace stats failed (${rc}):\n"
            "${out}\n${err}")
  endif()
  set(fresh_trace ${trace} PARENT_SCOPE)
endfunction()

check_workload(synth_false --workload synth:false --iters 12)
check_workload(matmul --workload matmul --n 8)

# --- CLI error paths ------------------------------------------------

run(rc out err ${CCSVM_DRIVER} --workload replay --trace
    ${fresh_trace} --cpu-cores 2)
if(NOT rc EQUAL 2 OR NOT err MATCHES "machine shape")
  message(FATAL_ERROR "shape-mismatched replay must exit 2 with a "
          "machine-shape diagnostic, got rc=${rc}:\n${err}")
endif()

run(rc out err ${CCSVM_DRIVER} --workload replay)
if(NOT rc EQUAL 2 OR NOT err MATCHES "--trace")
  message(FATAL_ERROR "--workload replay without --trace must exit "
          "2, got rc=${rc}:\n${err}")
endif()

run(rc out err ${CCSVM_TRACE_TOOL} validate
    ${CCSVM_OUT_DIR}/replay_nonexistent.ccsvmt)
if(NOT rc EQUAL 1)
  message(FATAL_ERROR "ccsvm-trace validate on a missing file must "
          "exit 1, got ${rc}:\n${out}${err}")
endif()

# --- the committed trace library ------------------------------------

if(CCSVM_TRACES_DIR)
  file(GLOB committed ${CCSVM_TRACES_DIR}/*.ccsvmt)
  list(LENGTH committed n)
  if(n EQUAL 0)
    message(FATAL_ERROR "no .ccsvmt traces under ${CCSVM_TRACES_DIR}")
  endif()
  foreach(trace IN LISTS committed)
    run_ok(${CCSVM_TRACE_TOOL} validate ${trace})
    run_ok(${CCSVM_DRIVER} --workload replay --trace ${trace})
  endforeach()
  message(STATUS "trace library ok: ${n} committed traces validate "
                 "and replay")
endif()

message(STATUS "replay ok: capture/replay byte-identical for 2 "
               "workloads at --sim-threads 1 and 4")

#!/usr/bin/env python3
"""Run abl_replay, emit BENCH_replay.json, and gate on regressions.

The durable perf trajectory for the trace capture + replay subsystem:
CI runs this after the build, uploads the fresh BENCH_replay.json as
an artifact, and fails when replay throughput regresses by more than
the threshold against the committed baseline.

The gated metric is replay_capture_ratio — replay throughput over
capture throughput from the same process on the same host, so the
number is host-speed independent: a slower CI machine scales both
sides equally, while a regression in the replay path (or a capture
speedup replay fails to share) moves the ratio. Absolute Mev/s and
event counts are recorded for trend reading but deliberately not
gated.

usage: scripts/bench_compare.py [--build DIR] [--out FILE]
                                [--baseline FILE] [--threshold F]
                                [--update]

  --update   rewrite the committed baseline from this run (use after
             an intentional perf change; commit the result)
"""

import argparse
import json
import os
import subprocess
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def run_bench(build_dir: str, out_path: str) -> dict:
    bench = os.path.join(build_dir, "bench", "abl_replay")
    if not os.access(bench, os.X_OK):
        sys.exit(f"bench_compare: no abl_replay at {bench}; build first")
    env = dict(os.environ, CCSVM_BENCH_JSON=out_path)
    subprocess.run([bench], check=True, env=env,
                   stdout=subprocess.DEVNULL)
    with open(out_path) as f:
        return json.load(f)


def rows_by_x(doc: dict) -> dict:
    return {row["x"]: row for row in doc["rows"]}


def main() -> int:
    ap = argparse.ArgumentParser()
    ap.add_argument("--build", default=os.path.join(REPO, "build"))
    ap.add_argument("--out",
                    default=os.path.join(REPO, "BENCH_replay.json"))
    ap.add_argument("--baseline",
                    default=os.path.join(REPO, "bench",
                                         "BENCH_replay.baseline.json"))
    ap.add_argument("--threshold", type=float, default=0.8,
                    help="fail when ratio < threshold * baseline "
                         "(default 0.8 = >20%% regression)")
    ap.add_argument("--update", action="store_true")
    args = ap.parse_args()

    doc = run_bench(args.build, args.out)
    print(f"bench_compare: wrote {args.out}")

    if args.update:
        with open(args.baseline, "w") as f:
            json.dump(doc, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"bench_compare: baseline updated: {args.baseline}")
        return 0

    if not os.path.exists(args.baseline):
        sys.exit(f"bench_compare: no baseline at {args.baseline}; "
                 f"run with --update to create one")
    with open(args.baseline) as f:
        base = json.load(f)

    current = rows_by_x(doc)
    failures = []
    for x, base_row in rows_by_x(base).items():
        if x not in current:
            failures.append(f"row x={x} missing from current run")
            continue
        cur = current[x]
        base_ratio = base_row["replay_capture_ratio"]
        cur_ratio = cur["replay_capture_ratio"]
        floor = args.threshold * base_ratio
        verdict = "ok" if cur_ratio >= floor else "REGRESSION"
        print(f"bench_compare: x={x} replay_capture_ratio "
              f"{cur_ratio:.3f} vs baseline {base_ratio:.3f} "
              f"(floor {floor:.3f}) {verdict}  "
              f"[events {cur['events']:.0f} vs "
              f"{base_row['events']:.0f}, replay "
              f"{cur['replay_Mev_per_s']:.2f} Mev/s]")
        if cur_ratio < floor:
            failures.append(
                f"x={x}: replay/capture throughput ratio "
                f"{cur_ratio:.3f} fell below {floor:.3f} "
                f"({args.threshold:.0%} of baseline "
                f"{base_ratio:.3f})")

    if failures:
        for f_ in failures:
            print(f"bench_compare: FAIL: {f_}", file=sys.stderr)
        return 1
    print("bench_compare: replay throughput within "
          f"{1 - args.threshold:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env bash
# Tier-1 verify: configure, build warnings-as-errors, run every test.
# Usage: scripts/ci.sh [build-dir]
#   CCSVM_BUILD_TYPE=Release|Debug   CMake build type (default Release)
#   CCSVM_SANITIZE=1|address|thread  sanitizer lane (ASan+UBSan or TSan)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

CMAKE_ARGS=(-DCCSVM_WERROR=ON
            -DCMAKE_BUILD_TYPE="${CCSVM_BUILD_TYPE:-Release}")
case "${CCSVM_SANITIZE:-0}" in
    0) ;;
    1) CMAKE_ARGS+=(-DCCSVM_SANITIZE=ON) ;;
    *) CMAKE_ARGS+=(-DCCSVM_SANITIZE="$CCSVM_SANITIZE") ;;
esac
# Compile through ccache when available (the CI workflow caches
# ~/.cache/ccache across runs; local builds just get faster rebuilds).
if command -v ccache >/dev/null 2>&1; then
    CMAKE_ARGS+=(-DCMAKE_CXX_COMPILER_LAUNCHER=ccache)
fi

cmake -B "$BUILD_DIR" -S . "${CMAKE_ARGS[@]}"
cmake --build "$BUILD_DIR" -j "$(nproc)"

# The protocol list comes from the driver's own enum table
# (--list-protocols), so these loops cannot drift when a protocol is
# added or renamed.
PROTOCOLS=$("$BUILD_DIR"/tools/ccsvm --list-protocols)
[[ -n $PROTOCOLS ]] || {
    echo "ci.sh: --list-protocols returned no protocols" >&2
    exit 1
}

# Per-protocol fast loop: the value-parametrized suites instantiate
# only the protocols named in CCSVM_PROTOCOLS, so each sub-second
# pass checks the non-long labels against one coherence protocol in
# isolation (and proves the CCSVM_PROTOCOLS narrowing itself works).
# The full pass below still covers all protocols together — and,
# through the pair-parametrized suites, all protocol pairs.
for proto in $PROTOCOLS; do
    echo "=== non-long suites, protocol=$proto ==="
    CCSVM_PROTOCOLS="$proto" ctest --test-dir "$BUILD_DIR" \
        --output-on-failure -j "$(nproc)" -LE long
done

# Full pass: every suite (including the long label), all protocols.
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

# Partitioned-engine pass: rerun the machine-level suites with every
# CcsvmMachine on the 4-worker windowed engine (CCSVM_SIM_THREADS is
# the suites' opt-in knob — machines built without an explicit
# simThreads consult it). The engine commits the same event order at
# any thread count, so exactly the same assertions must hold.
# litmus_test carries the long label but is named here anyway: its
# repeated task resubmission is what caught the engine's clock-skew
# bug.
echo "=== machine suites on the 4-thread engine ==="
CCSVM_SIM_THREADS=4 ctest --test-dir "$BUILD_DIR" \
    --output-on-failure -j "$(nproc)" \
    -R 'machine_test|mifd_test|litmus_test|coherence_test|parteventq_test'

# Driver smoke on the threaded engine (the quantitative byte-identity
# grid lives in the ccsvm_parallel_engine ctest, run above).
"$BUILD_DIR"/tools/ccsvm --workload matmul --n 8 --sim-threads 4

# Synth smoke loop: every synthetic coherence pattern, tiny
# iteration counts, all protocols. The pattern list comes from the
# driver's own registry (--list-workloads), so this loop cannot
# drift when a pattern is added or renamed.
SYNTH_PATTERNS=$("$BUILD_DIR"/tools/ccsvm --list-workloads |
    awk '$1 ~ /^synth:/ { print $1 }')
[[ -n $SYNTH_PATTERNS ]] || {
    echo "ci.sh: --list-workloads returned no synth patterns" >&2
    exit 1
}
for pattern in $SYNTH_PATTERNS; do
    for proto in $PROTOCOLS; do
        echo "=== synth smoke: $pattern protocol=$proto ==="
        "$BUILD_DIR"/tools/ccsvm --workload "$pattern" --iters 8 \
            --protocol "$proto"
    done
done

# Observability smoke: a traced, sampled run with stdout JSON. The
# quantitative assertions (trace byte-identity across --sim-threads,
# stats unperturbed by tracing, histogram presence) live in the
# ccsvm_trace_check ctest, which the full pass above already ran.
echo "=== observability smoke ==="
"$BUILD_DIR"/tools/ccsvm --workload matmul --n 8 \
    --trace-out "$BUILD_DIR/ci_trace.json" \
    --trace-categories coh,noc,kernel \
    --sample-interval 500000 --json - > "$BUILD_DIR/ci_stats.json"
if command -v python3 >/dev/null 2>&1; then
    python3 - "$BUILD_DIR/ci_trace.json" "$BUILD_DIR/ci_stats.json" \
        <<'EOF'
import json, sys
trace = json.load(open(sys.argv[1]))
assert trace["traceEvents"], "empty trace"
stats = json.load(open(sys.argv[2]))
assert stats["series"]["samples"], "empty series"
assert "latency.cpu.mem" in stats["stats"]["histograms"]
print(f'ci.sh: trace rows={len(trace["traceEvents"])} '
      f'samples={len(stats["series"]["samples"])}')
EOF
fi

# Trace capture + replay smoke: capture a run, validate the file with
# ccsvm-trace, replay it, and check the committed trace library. The
# quantitative assertions (capture/replay stats byte-identity at 1 and
# 4 sim threads, shape-mismatch rejection) live in replay_test and the
# ccsvm_replay_check ctest, which the full pass above already ran.
echo "=== trace capture/replay smoke ==="
"$BUILD_DIR"/tools/ccsvm --workload synth:false --iters 12 \
    --capture-out "$BUILD_DIR/ci_smoke.ccsvmt"
"$BUILD_DIR"/tools/ccsvm-trace validate "$BUILD_DIR/ci_smoke.ccsvmt"
"$BUILD_DIR"/tools/ccsvm --workload replay \
    --trace "$BUILD_DIR/ci_smoke.ccsvmt"
for trace in traces/*.ccsvmt; do
    "$BUILD_DIR"/tools/ccsvm-trace validate "$trace"
done

# Bank-layer policy smoke: every home-slice hash x replacement policy
# pair must run and validate on the conflict pattern (the bank
# layer's worst case). Both lists come from the driver's own enum
# tables (--list-slice-hashes / --list-replacers), so this loop
# cannot drift when a policy is added. The quantitative assertions
# (default-point byte-identity, occupancy skew, coherent-eviction
# shielding, the replay matrix) live in the ccsvm_bank_sweep ctest,
# which the full pass above already ran.
SLICE_HASHES=$("$BUILD_DIR"/tools/ccsvm --list-slice-hashes)
REPLACERS=$("$BUILD_DIR"/tools/ccsvm --list-replacers)
[[ -n $SLICE_HASHES && -n $REPLACERS ]] || {
    echo "ci.sh: empty --list-slice-hashes or --list-replacers" >&2
    exit 1
}
for hash in $SLICE_HASHES; do
    for replacer in $REPLACERS; do
        echo "=== bank smoke: slice-hash=$hash l2-replace=$replacer ==="
        "$BUILD_DIR"/tools/ccsvm --workload synth:conflict --iters 6 \
            --slice-hash "$hash" --l2-replace "$replacer"
    done
done

# Region-based coherence smoke: the per-workload default annotations
# (synth:stream buffer -> bypass, matmul inputs -> read-mostly) and an
# explicit whole-heap region must validate under every protocol. The
# quantitative assertions (fewer fills/invalidations under bypass,
# byte-identical default runs) live in the ccsvm_region_sweep ctest,
# which the full pass above already ran — in the sanitizer lane too.
for proto in $PROTOCOLS; do
    echo "=== region smoke: protocol=$proto ==="
    "$BUILD_DIR"/tools/ccsvm --workload synth:stream --iters 4 \
        --protocol "$proto" --region-hints
    "$BUILD_DIR"/tools/ccsvm --workload matmul --n 8 \
        --protocol "$proto" --region-hints
    "$BUILD_DIR"/tools/ccsvm --workload synth:hot --iters 8 \
        --protocol "$proto" \
        --region heap:0x20000000:0x40000000:bypass
done

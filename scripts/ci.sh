#!/usr/bin/env bash
# Tier-1 verify: configure, build warnings-as-errors, run every test.
# Usage: scripts/ci.sh [build-dir]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

cmake -B "$BUILD_DIR" -S . -DCCSVM_WERROR=ON
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

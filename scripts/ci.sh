#!/usr/bin/env bash
# Tier-1 verify: configure, build warnings-as-errors, run every test.
# Usage: scripts/ci.sh [build-dir]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

CMAKE_ARGS=(-DCCSVM_WERROR=ON)
# Compile through ccache when available (the CI workflow caches
# ~/.cache/ccache across runs; local builds just get faster rebuilds).
if command -v ccache >/dev/null 2>&1; then
    CMAKE_ARGS+=(-DCMAKE_CXX_COMPILER_LAUNCHER=ccache)
fi

cmake -B "$BUILD_DIR" -S . "${CMAKE_ARGS[@]}"
cmake --build "$BUILD_DIR" -j "$(nproc)"

# Per-protocol fast loop: the value-parametrized suites instantiate
# only the protocols named in CCSVM_PROTOCOLS, so each sub-second
# pass checks the non-long labels against one coherence protocol in
# isolation (and proves the CCSVM_PROTOCOLS narrowing itself works).
# The full pass below still covers all protocols together.
for proto in msi mesi moesi; do
    echo "=== non-long suites, protocol=$proto ==="
    CCSVM_PROTOCOLS="$proto" ctest --test-dir "$BUILD_DIR" \
        --output-on-failure -j "$(nproc)" -LE long
done

# Full pass: every suite (including the long label), all protocols.
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

# Synth smoke loop: every synthetic coherence pattern, tiny
# iteration counts, all protocols. The pattern list comes from the
# driver's own registry (--list-workloads), so this loop cannot
# drift when a pattern is added or renamed.
SYNTH_PATTERNS=$("$BUILD_DIR"/tools/ccsvm --list-workloads |
    awk '$1 ~ /^synth:/ { print $1 }')
[[ -n $SYNTH_PATTERNS ]] || {
    echo "ci.sh: --list-workloads returned no synth patterns" >&2
    exit 1
}
for pattern in $SYNTH_PATTERNS; do
    for proto in msi mesi moesi; do
        echo "=== synth smoke: $pattern protocol=$proto ==="
        "$BUILD_DIR"/tools/ccsvm --workload "$pattern" --iters 8 \
            --protocol "$proto"
    done
done

#!/usr/bin/env bash
# Regenerate the committed trace library (traces/*.ccsvmt): one small
# canonical capture per synthetic pattern plus matmul, all at the
# default (paper Table 2) machine shape, so any PR can replay a fixed
# stimulus across protocols without first running a workload.
#
# Capture is deterministic (byte-identical at any --sim-threads), so
# regeneration only changes the files when the simulator's timing or
# the trace format changes — both of which are PR-visible events.
#
# usage: scripts/gen_traces.sh [BUILD_DIR]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
build="${1:-build}"
driver="$build/tools/ccsvm"
tool="$build/tools/ccsvm-trace"
[ -x "$driver" ] || { echo "no driver at $driver; build first" >&2; exit 1; }

mkdir -p traces

for pat in padded false hot migratory prodcons stream ptrchase readmostly conflict; do
  "$driver" --workload "synth:$pat" --iters 12 \
            --capture-out "traces/synth_$pat.ccsvmt"
done
"$driver" --workload matmul --n 8 --capture-out traces/matmul_n8.ccsvmt

for t in traces/*.ccsvmt; do
  "$tool" validate "$t"
done
